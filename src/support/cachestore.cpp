#include "support/cachestore.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "support/io.hpp"
#include "support/strings.hpp"

namespace pareval::cache {

using support::Json;

namespace {

constexpr const char* kIndexFormat = "pareval-cachestore-v1";
constexpr std::string_view kFrameMagic = "PVJ1 ";
// "PVJ1 " + 8-hex length + " " + 8-hex crc + "\n"
constexpr std::size_t kHeaderSize = 5 + 8 + 1 + 8 + 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

std::string u32_to_hex(std::uint32_t v) {
  return support::strfmt("%08x", static_cast<unsigned>(v));
}

bool u32_from_hex(std::string_view hex, std::uint32_t* out) {
  std::uint64_t v = 0;
  if (hex.size() != 8 || !support::u64_from_hex(hex, &v)) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string frame_record(std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size() + 1);
  out += kFrameMagic;
  out += u32_to_hex(static_cast<std::uint32_t>(payload.size()));
  out += ' ';
  out += u32_to_hex(crc32(payload));
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

Store::Store(std::string dir) : dir_(std::move(dir)) {}

bool Store::open() { return support::make_dirs(dir_); }

std::string Store::path(const std::string& name) const {
  return dir_ + "/" + name;
}

std::optional<Store::Index> Store::read_index(
    const std::string& stream, const std::uint64_t* version) const {
  const auto text = support::read_file(path(stream + ".idx"));
  if (!text) return std::nullopt;
  const auto root = Json::parse(*text);
  if (!root || (*root)["format"].as_string() != kIndexFormat ||
      (*root)["stream"].as_string() != stream) {
    return std::nullopt;
  }
  if (version != nullptr &&
      (*root)["pipeline"].as_string() != support::u64_to_hex(*version)) {
    return std::nullopt;  // stale: written by a different pipeline
  }
  Index index;
  index.generation =
      static_cast<std::uint64_t>((*root)["generation"].as_int());
  index.snapshot = (*root)["snapshot"].as_string();
  return index;
}

bool Store::write_index(const std::string& stream, std::uint64_t version,
                        const Index& index) const {
  Json root = Json::object();
  root.set("format", kIndexFormat);
  root.set("stream", stream);
  root.set("pipeline", support::u64_to_hex(version));
  root.set("generation", static_cast<long long>(index.generation));
  root.set("snapshot", index.snapshot);
  return support::atomic_write_file(path(stream + ".idx"),
                                    root.dump() + '\n');
}

bool Store::reset_stream_locked(const std::string& stream,
                                std::uint64_t version) const {
  // Drop every snapshot of the stream (the previous index may be
  // malformed, so the current snapshot name is not trustworthy).
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(stream + ".", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".snap") == 0) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  std::filesystem::remove(path(stream + ".journal"), ec);
  return write_index(stream, version, Index{});
}

void Store::scan_frames(
    std::string_view buf, bool count_replayed, StreamStats& stats,
    const std::function<void(std::string_view)>& fn) const {
  std::size_t pos = 0;
  while (pos < buf.size()) {
    // A frame shorter than its header, a header that does not parse, or
    // a payload cut off mid-record are all the signature of a writer
    // that died mid-append: drop the tail, land on what came before.
    if (buf.size() - pos < kHeaderSize) {
      ++stats.torn_records_dropped;
      return;
    }
    std::uint32_t len = 0, crc = 0;
    if (buf.substr(pos, kFrameMagic.size()) != kFrameMagic ||
        !u32_from_hex(buf.substr(pos + 5, 8), &len) ||
        buf[pos + 13] != ' ' ||
        !u32_from_hex(buf.substr(pos + 14, 8), &crc) ||
        buf[pos + 22] != '\n') {
      ++stats.torn_records_dropped;
      return;
    }
    const std::size_t frame_end = pos + kHeaderSize + len + 1;
    if (frame_end > buf.size() || buf[frame_end - 1] != '\n') {
      ++stats.torn_records_dropped;
      return;
    }
    const std::string_view payload = buf.substr(pos + kHeaderSize, len);
    pos = frame_end;
    if (crc32(payload) != crc) {
      // A *complete* frame whose checksum fails is bit rot or injected
      // garbage, not a crash: the length field still delimits it, so
      // skip just this record and keep the ones after it.
      ++stats.crc_records_dropped;
      continue;
    }
    if (count_replayed) ++stats.records_replayed;
    fn(payload);
  }
}

StreamStats& Store::stats_locked(const std::string& stream) const {
  return stats_[stream];
}

bool Store::append(const std::string& stream, std::uint64_t version,
                   const Json& record) {
  return append_batch(stream, version, {record});
}

bool Store::append_batch(const std::string& stream, std::uint64_t version,
                         const std::vector<Json>& records) {
  // An empty batch appends nothing but still (re)initializes the index:
  // a layer's first flush seeds the stream under its pipeline version
  // even when it computed nothing, so the next attach() is warm.
  support::FileLock lock(path(stream + ".lock"));
  if (!lock.locked()) return false;
  auto index = read_index(stream, &version);
  if (!index) {
    // Absent, malformed, or written under a different pipeline version:
    // start the stream over — the journal equivalent of save()
    // overwriting a stale whole-file cache.
    if (!reset_stream_locked(stream, version)) return false;
    index = Index{};
  }
  std::string batch;
  for (const Json& record : records) batch += frame_record(record.dump());
  if (!support::append_file(path(stream + ".journal"), batch)) return false;
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  StreamStats& stats = stats_locked(stream);
  stats.records_appended += records.size();
  stats.generation = index->generation;
  stats.journal_bytes = support::file_size(path(stream + ".journal"));
  return true;
}

bool Store::replay(const std::string& stream, std::uint64_t version,
                   const std::function<void(const Json&)>& fn) {
  support::FileLock lock(path(stream + ".lock"));
  if (!lock.locked()) return false;
  const auto index = read_index(stream, &version);
  if (!index) return false;  // absent or stale: nothing to yield

  StreamStats scan{};
  auto yield = [&fn, &scan](std::string_view payload) {
    const auto record = Json::parse(payload);
    if (!record) {
      // A CRC-intact frame that is not JSON: treat like a rejected
      // record rather than poisoning the whole stream.
      --scan.records_replayed;
      ++scan.crc_records_dropped;
      return;
    }
    fn(*record);
  };
  if (index->generation > 0 && !index->snapshot.empty()) {
    if (const auto snap = support::read_file(path(index->snapshot))) {
      scan_frames(*snap, /*count_replayed=*/true, scan, yield);
    }
  }
  if (const auto journal =
          support::read_file(path(stream + ".journal"))) {
    scan_frames(*journal, /*count_replayed=*/true, scan, yield);
  }

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  StreamStats& stats = stats_locked(stream);
  stats.records_replayed += scan.records_replayed;
  stats.torn_records_dropped += scan.torn_records_dropped;
  stats.crc_records_dropped += scan.crc_records_dropped;
  stats.generation = index->generation;
  stats.journal_bytes = support::file_size(path(stream + ".journal"));
  return true;
}

bool Store::compact(const std::string& stream, std::uint64_t version) {
  support::FileLock lock(path(stream + ".lock"));
  if (!lock.locked()) return false;
  const auto index = read_index(stream, &version);
  if (!index) return false;
  return compact_locked(stream, version, *index);
}

bool Store::compact_locked(const std::string& stream,
                           std::uint64_t version, const Index& index) {
  const std::string journal_path = path(stream + ".journal");
  const std::size_t bytes_before = support::file_size(journal_path);

  // Fold snapshot + journal into the next generation's snapshot at the
  // record level: no codec, no layer knowledge — every intact record
  // survives, exact byte duplicates (N workers scoring the same key
  // produce identical records) collapse to their first occurrence, and
  // replay order is preserved, so the replayed state is byte-stable.
  std::string folded;
  std::unordered_set<std::string> seen;
  StreamStats scan{};
  auto keep = [&folded, &seen](std::string_view payload) {
    if (seen.emplace(payload).second) folded += frame_record(payload);
  };
  if (index.generation > 0 && !index.snapshot.empty()) {
    if (const auto snap = support::read_file(path(index.snapshot))) {
      scan_frames(*snap, /*count_replayed=*/false, scan, keep);
    }
  }
  if (const auto journal = support::read_file(journal_path)) {
    scan_frames(*journal, /*count_replayed=*/false, scan, keep);
  }

  Index next;
  next.generation = index.generation + 1;
  next.snapshot =
      stream + "." + std::to_string(next.generation) + ".snap";
  if (!support::atomic_write_file(path(next.snapshot), folded)) {
    return false;
  }
  if (!write_index(stream, version, next)) return false;
  // The folded records are now owned by the new snapshot: reset the
  // journal and drop the superseded snapshot. A crash between the index
  // publish and these cleanups only leaves duplicate records behind,
  // which replay-level insert-if-absent (and the next compaction's
  // dedupe) absorbs.
  {
    std::ofstream trunc(journal_path,
                        std::ios::binary | std::ios::trunc);
  }
  if (!index.snapshot.empty() && index.snapshot != next.snapshot) {
    std::error_code ec;
    std::filesystem::remove(path(index.snapshot), ec);
  }

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  StreamStats& stats = stats_locked(stream);
  ++stats.compactions;
  stats.generation = next.generation;
  stats.journal_bytes_before_compact = bytes_before;
  stats.journal_bytes_after_compact =
      support::file_size(journal_path);
  stats.journal_bytes = stats.journal_bytes_after_compact;
  stats.torn_records_dropped += scan.torn_records_dropped;
  stats.crc_records_dropped += scan.crc_records_dropped;
  return true;
}

bool Store::maybe_compact(const std::string& stream,
                          std::uint64_t version) {
  if (journal_bytes(stream) <= compact_threshold_) return true;
  return compact(stream, version);
}

std::size_t Store::journal_bytes(const std::string& stream) const {
  return support::file_size(path(stream + ".journal"));
}

StreamStats Store::stats(const std::string& stream) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  StreamStats out = stats_locked(stream);
  out.journal_bytes = support::file_size(path(stream + ".journal"));
  return out;
}

Json Store::stats_json(const std::string& stream) const {
  const StreamStats s = stats(stream);
  Json j = Json::object();
  j.set("generation", static_cast<long long>(s.generation));
  j.set("records_appended", static_cast<long long>(s.records_appended));
  j.set("records_replayed", static_cast<long long>(s.records_replayed));
  j.set("torn_records_dropped",
        static_cast<long long>(s.torn_records_dropped));
  j.set("crc_records_dropped",
        static_cast<long long>(s.crc_records_dropped));
  j.set("compactions", static_cast<long long>(s.compactions));
  j.set("journal_bytes", static_cast<long long>(s.journal_bytes));
  j.set("journal_bytes_before_compact",
        static_cast<long long>(s.journal_bytes_before_compact));
  j.set("journal_bytes_after_compact",
        static_cast<long long>(s.journal_bytes_after_compact));
  return j;
}

// --- legacy single-file formats --------------------------------------------

bool write_versioned_file(const std::string& path,
                          std::string_view format_tag,
                          std::uint64_t version,
                          std::vector<std::pair<std::string, Json>> fields) {
  Json root = Json::object();
  root.set("format", std::string(format_tag));
  root.set("pipeline", support::u64_to_hex(version));
  for (auto& [key, value] : fields) {
    root.set(std::move(key), std::move(value));
  }
  // Atomic publish (temp + rename): concurrent whole-file savers sharing
  // one path race benignly and a reader never observes a torn write.
  return support::atomic_write_file(path, root.dump() + '\n');
}

std::optional<Json> read_versioned_file(const std::string& path,
                                        std::string_view format_tag,
                                        std::uint64_t version) {
  const auto text = support::read_file(path);
  if (!text) return std::nullopt;
  auto root = Json::parse(*text);
  if (!root || (*root)["format"].as_string() != format_tag) {
    return std::nullopt;  // missing, malformed, or a foreign format
  }
  if ((*root)["pipeline"].as_string() != support::u64_to_hex(version)) {
    return std::nullopt;  // stale: written by a different pipeline
  }
  return root;
}

}  // namespace pareval::cache
