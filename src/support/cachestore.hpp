#pragma once
// cache::Store — one multi-writer persistence API for every cache layer.
//
// The pre-journal persistence (PRs 2/4/5) was whole-file rewrite: atomic,
// but last-writer-wins, so exactly one publisher could own a cache path
// and CI had to shuttle per-worker delta files to a fan-in merge step.
// The Store replaces that with a shared cache *directory* of append-only
// journals, so N sweep_worker processes (and a future sweep_server) can
// share one warm cache with no merge step at all.
//
// Layout, per typed record stream `<s>` inside the store directory:
//
//   <s>.idx        generation-stamped index: format tag, pipeline version,
//                  current generation G, and the snapshot file name —
//                  published atomically (temp + rename)
//   <s>.<G>.snap   the compacted snapshot of generation G: every record
//                  up to the last compaction, in one framed file
//   <s>.journal    the live tail: records appended since generation G
//   <s>.lock       flock() target serializing appends/compactions among
//                  writers (processes AND threads — see support::FileLock)
//
// Records are single JSON documents framed as
//
//   "PVJ1 " <8-hex payload length> " " <8-hex CRC-32 of payload> "\n"
//   <payload> "\n"
//
// so a reader can always recover from a crashed writer: a torn tail
// record (incomplete header or short payload) is dropped along with
// everything after it, and recovery lands on the snapshot of the last
// good generation plus the intact journal prefix. A complete frame whose
// CRC does not match its payload (bit rot, garbage injection) is skipped
// individually — the length field still delimits it, so later records
// survive. Appends take the stream's file lock and issue one write(), so
// concurrent appenders interleave whole records, never bytes.
//
// Compaction is record-level and codec-free: when the journal exceeds a
// byte threshold, the snapshot and journal are folded into a new snapshot
// (exact byte-duplicate records deduplicated, first occurrence kept, so
// the replayed state is byte-stable), the index is stamped with the next
// generation, and the journal is reset — all under the stream lock, so a
// concurrent appender can never have its records dropped.
//
// Streams are versioned like the legacy cache files: the index carries
// the pipeline hash, a replay under a different version yields nothing
// (stale), and an append under a different version resets the stream —
// the journal equivalent of "save overwrites a stale file".
//
// The layers (eval::ScoreCache, buildsim::TuCompileCache) sit on top via
// per-layer codecs: attach(store) replays their streams into memory,
// flush() appends what they computed since, and the legacy single-file
// formats remain readable/writable through the read/write_versioned_file
// helpers below (one shared implementation of the format/version-check
// plumbing both layers used to duplicate).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace pareval::cache {

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes` — the record
/// frame checksum.
std::uint32_t crc32(std::string_view bytes);

/// Per-stream observability counters. Replay/append/torn/crc/compaction
/// counts are per-Store-instance (what THIS process observed/did);
/// generation and journal_bytes reflect the shared on-disk state as of
/// the last operation.
struct StreamStats {
  std::uint64_t generation = 0;
  std::size_t records_appended = 0;
  std::size_t records_replayed = 0;
  std::size_t torn_records_dropped = 0;
  std::size_t crc_records_dropped = 0;
  std::size_t compactions = 0;
  std::size_t journal_bytes = 0;
  std::size_t journal_bytes_before_compact = 0;
  std::size_t journal_bytes_after_compact = 0;

  bool operator==(const StreamStats&) const = default;
};

class Store {
 public:
  explicit Store(std::string dir);

  const std::string& dir() const noexcept { return dir_; }

  /// Create the store directory (mkdir -p). Every other operation
  /// assumes it exists; returns false when it cannot be created.
  bool open();

  /// Append one record to `stream` under `version`. Takes the stream
  /// lock, (re)initializes or resets the index as needed, and issues one
  /// framed write. Returns false on I/O failure.
  bool append(const std::string& stream, std::uint64_t version,
              const support::Json& record);

  /// Append many records under ONE lock acquisition and one write() —
  /// what the layers' flush() uses, so a worker's end-of-run publish is
  /// a single atomic batch from any reader's point of view.
  bool append_batch(const std::string& stream, std::uint64_t version,
                    const std::vector<support::Json>& records);

  /// Replay every record of `stream` — snapshot of the current
  /// generation first, then the journal tail — in append order, invoking
  /// `fn` per record. Torn tail records and CRC-rejected frames are
  /// dropped (counted in stats). Returns false when the stream does not
  /// exist or was written under a different `version` (stale: nothing is
  /// yielded), true otherwise.
  bool replay(const std::string& stream, std::uint64_t version,
              const std::function<void(const support::Json&)>& fn);

  /// Fold the journal into a new snapshot (next generation) and reset
  /// the journal. Record-level and codec-free: every intact record
  /// survives (exact byte duplicates collapse to their first
  /// occurrence), so the replayed state is byte-for-byte stable across
  /// compactions. Runs under the stream lock — concurrent appenders
  /// never lose records. Returns false on I/O failure or a version
  /// mismatch (a stale stream is reset by the next append, not here).
  bool compact(const std::string& stream, std::uint64_t version);

  /// compact() iff the journal exceeds the byte threshold. Returns true
  /// when no compaction was needed or it succeeded.
  bool maybe_compact(const std::string& stream, std::uint64_t version);

  /// Journal bytes currently on disk for `stream`.
  std::size_t journal_bytes(const std::string& stream) const;

  /// The compaction threshold maybe_compact applies (default 1 MiB).
  void set_compact_threshold(std::size_t bytes) noexcept {
    compact_threshold_ = bytes;
  }
  std::size_t compact_threshold() const noexcept {
    return compact_threshold_;
  }

  StreamStats stats(const std::string& stream) const;

  /// The stats as a JSON object with a pinned key order (generation,
  /// records_appended, records_replayed, torn_records_dropped,
  /// crc_records_dropped, compactions, journal_bytes,
  /// journal_bytes_before_compact, journal_bytes_after_compact) — the
  /// per-layer journal block CACHE_stats.json embeds.
  support::Json stats_json(const std::string& stream) const;

 private:
  struct Index {
    std::uint64_t generation = 0;
    std::string snapshot;  // file name within dir_; "" for generation 0
  };

  std::string path(const std::string& name) const;
  /// Read `stream`'s index. nullopt: absent/malformed/foreign format or,
  /// when `version` is non-null, a pipeline-version mismatch.
  std::optional<Index> read_index(const std::string& stream,
                                  const std::uint64_t* version) const;
  bool write_index(const std::string& stream, std::uint64_t version,
                   const Index& index) const;
  /// Reset `stream` to an empty generation-0 state under `version`.
  /// Caller holds the stream lock.
  bool reset_stream_locked(const std::string& stream,
                           std::uint64_t version) const;
  /// Scan one framed buffer, invoking `fn` per intact payload.
  void scan_frames(std::string_view buf, bool count_replayed,
                   StreamStats& stats,
                   const std::function<void(std::string_view)>& fn) const;
  bool compact_locked(const std::string& stream, std::uint64_t version,
                      const Index& index);
  StreamStats& stats_locked(const std::string& stream) const;

  std::string dir_;
  std::size_t compact_threshold_ = 1 << 20;
  mutable std::mutex stats_mu_;
  mutable std::map<std::string, StreamStats> stats_;
};

/// One framed record as journal bytes (header + payload + newline) —
/// exposed for tests that need to craft or corrupt frames precisely.
std::string frame_record(std::string_view payload);

// --- legacy single-file formats --------------------------------------------
//
// The pre-journal whole-file formats ("pareval-score-cache-v2",
// "pareval-tu-cache-v1") stay readable and writable bit-identically —
// published CI caches, test fixtures, and --verify's file round trips
// all depend on them. Both layers' save/load now share this one
// implementation of the root-object, format-tag, and pipeline-version
// plumbing instead of hand-rolling it twice.

/// Build {"format": tag, "pipeline": hex(version), <fields...>} and
/// publish it atomically at `path` (temp + rename). Fields keep their
/// given order, so existing files round-trip byte-identically.
bool write_versioned_file(
    const std::string& path, std::string_view format_tag,
    std::uint64_t version,
    std::vector<std::pair<std::string, support::Json>> fields);

/// Parse `path` and check its format tag and pipeline version. nullopt —
/// loading nothing — when the file is missing, does not parse, carries a
/// different format tag (older/foreign cache format), or was written
/// under a different `version` (stale cache).
std::optional<support::Json> read_versioned_file(const std::string& path,
                                                 std::string_view format_tag,
                                                 std::uint64_t version);

}  // namespace pareval::cache
