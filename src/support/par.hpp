#pragma once
// Minimal shared-memory parallel loop used by the native golden references
// and the evaluation harness (N independent translation samples per task).
// Uses plain std::thread with a static block distribution: the work items
// here are coarse and independent, so anything fancier is wasted complexity.

#include <cstddef>
#include <functional>

namespace pareval::support {

/// Number of worker threads used by parallel_for (>= 1).
unsigned hardware_threads() noexcept;

/// Run body(i) for i in [begin, end) across up to `threads` threads.
/// `threads == 0` means hardware_threads(). Exceptions thrown by `body`
/// propagate to the caller (the first one observed).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace pareval::support
