#pragma once
// Parallel execution substrate for the evaluation harness and the native
// golden references.
//
// The central abstraction is `ThreadPool`, a persistent work-stealing
// scheduler: each worker owns a deque, `submit()` from a worker thread
// pushes onto that worker's own deque (LIFO for locality), idle workers
// steal from the front of their peers' deques (FIFO, oldest-first), and
// any thread can make progress on pending work via `run_pending_task()` /
// `await()`. Waiting by helping is what makes *nested* submission safe:
// a pool task that submits subtasks and `await()`s them executes other
// pending tasks while it waits, so a fully-busy pool cannot deadlock on
// its own children.
//
// `parallel_for` is retained as a convenience wrapper and now schedules
// onto the shared global pool instead of spawning throwaway threads.

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <vector>

namespace pareval::support {

/// Number of worker threads in the default pool (>= 1).
unsigned hardware_threads() noexcept;

/// Two-level task priority: every executor (worker, helper, or external
/// thread calling run_pending_task) drains High tasks — its own and any it
/// can steal — before touching a Normal one. Figure-critical sweep cells
/// (bench_figures) ride the High lane so reports unblock first.
enum class TaskPriority { Normal, High };

class ThreadPool {
 public:
  /// `threads == 0` means hardware_threads().
  explicit ThreadPool(unsigned threads = 0);
  /// Drains every already-submitted task, then joins the workers. Tasks
  /// that land during teardown (a draining task submitting a follow-up)
  /// are executed too: after the workers join, the destroying thread
  /// sweeps the queues until they are empty, so a task whose submit()
  /// returned can never be silently dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const noexcept { return worker_count_; }

  /// Schedule `f()` on the pool and return a future for its result.
  /// Safe to call from inside a pool task (nested submission); pair with
  /// `await()` rather than `future::get()` when doing so.
  template <class F, class R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit(F&& f) {
    return submit(TaskPriority::Normal, std::forward<F>(f));
  }

  /// submit() with an explicit priority lane.
  template <class F, class R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit(TaskPriority priority, F&& f) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> out = task->get_future();
    push([task] { (*task)(); }, priority);
    return out;
  }

  /// Execute one pending task if any is available (own deque first, then
  /// steal). Returns false when every deque is empty. Safe from any thread.
  bool run_pending_task();

  /// Complete every queued-but-unstarted task, helping from the calling
  /// thread, and return once the queues are empty (tasks a drained task
  /// submitted are drained too). Does NOT wait for tasks already popped
  /// by a worker and still executing — pair with await() on their futures
  /// for that. The pool stays fully usable afterwards: a long-lived
  /// server calls drain() between jobs or before a graceful exit without
  /// tearing the workers down.
  void drain();

  /// Wait for `fut`, executing pending pool tasks in the meantime, then
  /// return its value (rethrowing the task's exception, if any).
  template <class R>
  R await(std::future<R>& fut) {
    help_until([&] {
      return fut.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    });
    return fut.get();
  }

  /// Run pending tasks until `done()` returns true. When no work is
  /// available it backs off — a few yields, then bounded exponential
  /// sleeps (capped at ~2ms) on the pool's wake signal — so an idle
  /// waiter burns ~no CPU while push() still wakes it promptly.
  void help_until(const std::function<bool()>& done);

  /// The process-wide pool shared by parallel_for and the harness.
  static ThreadPool& global();

 private:
  struct WorkerQueue;
  struct State;

  void push(std::function<void()> task,
            TaskPriority priority = TaskPriority::Normal);
  void worker_loop(unsigned index);
  bool try_pop(std::function<void()>& out);

  std::shared_ptr<State> state_;
  unsigned worker_count_ = 0;
};

/// Run body(i) for i in [begin, end) with dynamic scheduling on the global
/// pool, using at most `threads` concurrent executors (the caller is one of
/// them). `threads == 0` means hardware_threads(); `threads == 1` runs
/// serially inline. Exceptions thrown by `body` propagate to the caller
/// (the first one observed by index-claim order).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace pareval::support
