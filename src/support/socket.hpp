#pragma once
// Minimal blocking-socket helpers for the sweep service: RAII descriptor
// ownership, whole-buffer send, poll-gated accept/receive, and one
// endpoint spelling shared by the server and client tools.
//
// Endpoints are strings:
//   "unix:/path/to.sock"  (or a bare path — anything without a known
//                          scheme is a Unix-domain socket path)
//   "tcp:host:port"       (IPv4; "tcp:7070" listens/connects on
//                          127.0.0.1)
//
// Deliberately small: the sweep protocol is length-prefixed frames over
// one ordered byte stream, so all the server needs is listen/accept/
// connect, send_all, recv_some with a timeout, and clean shutdown. No
// non-blocking state machines — each connection is owned by one thread.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace pareval::support {

/// A parsed endpoint string. `tcp == false` means a Unix-domain socket at
/// `path` (host/port unused).
struct Endpoint {
  bool tcp = false;
  std::string path;  // unix: filesystem path of the socket
  std::string host;  // tcp: dotted quad or name resolved by inet_pton
  int port = 0;      // tcp

  /// Parse the endpoint spelling above. nullopt (with `error` set when
  /// non-null) on an empty string, a malformed tcp triple, or a port
  /// outside [1, 65535].
  static std::optional<Endpoint> parse(std::string_view text,
                                       std::string* error = nullptr);

  /// The canonical string form ("unix:/path" / "tcp:host:port").
  std::string describe() const;
};

/// Move-only owner of one connected socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close();

  /// Write all of `data`, retrying on short writes and EINTR. False on
  /// any error (including the peer closing); SIGPIPE is suppressed via
  /// MSG_NOSIGNAL, so a dead peer is a return value, not a signal.
  bool send_all(std::string_view data);

  /// Receive up to `max` bytes, appending to `*out`. Returns the byte
  /// count (> 0), 0 on orderly peer close, and -1 on error. When
  /// `timeout_ms >= 0` the call polls first and returns -2 if no data
  /// arrives in time (the connection is still healthy).
  int recv_some(std::string* out, std::size_t max = 64 * 1024,
                int timeout_ms = -1);

 private:
  int fd_ = -1;
};

/// Move-only owner of a listening socket. For Unix endpoints the socket
/// file is unlinked on close (best effort), so a drained server leaves no
/// stale socket behind.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen on `ep`. A pre-existing Unix socket file at the path
  /// is unlinked first (the previous owner crashed or leaked it; a live
  /// server would still hold the listen socket, and two servers on one
  /// path is an operator error this cannot detect). False + `error` on
  /// failure.
  bool open(const Endpoint& ep, std::string* error = nullptr);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close();

  /// Accept one connection, waiting at most `timeout_ms` (-1 = forever).
  /// nullopt on timeout or a transient accept error — the caller's loop
  /// just comes back around (and checks its own stop flag, which is the
  /// point of the timeout).
  std::optional<Socket> accept(int timeout_ms);

 private:
  int fd_ = -1;
  std::string unlink_path_;  // non-empty: unlink on close (unix sockets)
};

/// Connect to `ep`. An invalid Socket (with `error` set when non-null)
/// on failure.
Socket connect_endpoint(const Endpoint& ep, std::string* error = nullptr);

}  // namespace pareval::support
