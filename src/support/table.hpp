#pragma once
// ASCII table and heat-map rendering for the benchmark harness. The paper
// reports its evaluation as heat maps (Figs. 2-5) and tables (Tables 1-2);
// these classes render the same rows/series as text.

#include <optional>
#include <string>
#include <vector>

namespace pareval::support {

/// Simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// A labelled 2-D grid of optional values: empty cells print as blank
/// (the paper's "not run" cells), present values with fixed precision.
class HeatMap {
 public:
  HeatMap(std::string title, std::vector<std::string> row_labels,
          std::vector<std::string> col_labels);

  void set(std::size_t row, std::size_t col, double value);
  std::optional<double> at(std::size_t row, std::size_t col) const;

  std::size_t rows() const { return row_labels_.size(); }
  std::size_t cols() const { return col_labels_.size(); }
  const std::string& title() const { return title_; }
  const std::vector<std::string>& row_labels() const { return row_labels_; }
  const std::vector<std::string>& col_labels() const { return col_labels_; }

  /// Render with `digits` decimals per cell.
  std::string render(int digits = 2) const;

 private:
  std::string title_;
  std::vector<std::string> row_labels_;
  std::vector<std::string> col_labels_;
  std::vector<std::optional<double>> cells_;
};

/// Render several heat maps side by side (the paper's technique columns).
std::string render_side_by_side(const std::vector<HeatMap>& maps,
                                int digits = 2);

}  // namespace pareval::support
