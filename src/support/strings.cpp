#include "support/strings.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace pareval::support {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      std::size_t end = i;
      if (end > start && s[end - 1] == '\r') --end;
      out.emplace_back(s.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < s.size()) out.emplace_back(s.substr(start));
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      return out;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string format_number(double v, int digits) {
  if (std::isnan(v)) return "nan";
  if (v == static_cast<long long>(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string u64_to_hex(std::uint64_t v) {
  return strfmt("%016llx", static_cast<unsigned long long>(v));
}

bool u64_from_hex(std::string_view hex, std::uint64_t* out) {
  // Strict: strtoull would accept signs, whitespace, and "0x" prefixes,
  // any of which would silently mangle a hand-edited cache key.
  if (hex.empty() || hex.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
  }
  *out = v;
  return true;
}

namespace {

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string base64_encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const unsigned v = (static_cast<unsigned char>(bytes[i]) << 16) |
                       (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                       static_cast<unsigned char>(bytes[i + 2]);
    out += kB64Alphabet[(v >> 18) & 63];
    out += kB64Alphabet[(v >> 12) & 63];
    out += kB64Alphabet[(v >> 6) & 63];
    out += kB64Alphabet[v & 63];
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const unsigned v = static_cast<unsigned char>(bytes[i]) << 16;
    out += kB64Alphabet[(v >> 18) & 63];
    out += kB64Alphabet[(v >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    const unsigned v = (static_cast<unsigned char>(bytes[i]) << 16) |
                       (static_cast<unsigned char>(bytes[i + 1]) << 8);
    out += kB64Alphabet[(v >> 18) & 63];
    out += kB64Alphabet[(v >> 12) & 63];
    out += kB64Alphabet[(v >> 6) & 63];
    out += '=';
  }
  return out;
}

bool base64_decode(std::string_view text, std::string* out) {
  if (text.size() % 4 != 0) return false;
  out->clear();
  out->reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    const bool last = i + 4 == text.size();
    int pad = 0;
    if (last && text[i + 3] == '=') pad = text[i + 2] == '=' ? 2 : 1;
    int vals[4] = {0, 0, 0, 0};
    for (int k = 0; k < 4 - pad; ++k) {
      vals[k] = b64_value(text[i + static_cast<std::size_t>(k)]);
      if (vals[k] < 0) return false;
    }
    const unsigned v = (static_cast<unsigned>(vals[0]) << 18) |
                       (static_cast<unsigned>(vals[1]) << 12) |
                       (static_cast<unsigned>(vals[2]) << 6) |
                       static_cast<unsigned>(vals[3]);
    // Stray low bits mean this was not produced by encode: reject rather
    // than silently truncate.
    if (pad == 2 && (v & 0xffff) != 0) return false;
    if (pad == 1 && (v & 0xff) != 0) return false;
    out->push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) out->push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) out->push_back(static_cast<char>(v & 0xff));
  }
  return true;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace pareval::support
