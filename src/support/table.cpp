#include "support/table.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/strings.hpp"

namespace pareval::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out += " " + pad_right(c < row.size() ? row[c] : "", width[c]) + " |";
    }
    return out + "\n";
  };
  std::string sep = "+";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  sep += "\n";
  std::string out = sep + line(header_) + sep;
  for (const auto& row : rows_) out += line(row);
  out += sep;
  return out;
}

HeatMap::HeatMap(std::string title, std::vector<std::string> row_labels,
                 std::vector<std::string> col_labels)
    : title_(std::move(title)),
      row_labels_(std::move(row_labels)),
      col_labels_(std::move(col_labels)),
      cells_(row_labels_.size() * col_labels_.size()) {}

void HeatMap::set(std::size_t row, std::size_t col, double value) {
  if (row >= rows() || col >= cols()) {
    throw std::out_of_range("HeatMap::set out of range");
  }
  cells_[row * cols() + col] = value;
}

std::optional<double> HeatMap::at(std::size_t row, std::size_t col) const {
  if (row >= rows() || col >= cols()) return std::nullopt;
  return cells_[row * cols() + col];
}

std::string HeatMap::render(int digits) const {
  std::size_t label_w = 0;
  for (const auto& r : row_labels_) label_w = std::max(label_w, r.size());
  std::vector<std::size_t> col_w(cols());
  for (std::size_t c = 0; c < cols(); ++c) {
    col_w[c] = std::max<std::size_t>(col_labels_[c].size(), 4);
  }
  std::string out = title_ + "\n";
  out += std::string(label_w, ' ') + " ";
  for (std::size_t c = 0; c < cols(); ++c) {
    out += " " + pad_left(col_labels_[c], col_w[c]);
  }
  out += "\n";
  for (std::size_t r = 0; r < rows(); ++r) {
    out += pad_right(row_labels_[r], label_w) + " ";
    for (std::size_t c = 0; c < cols(); ++c) {
      const auto v = cells_[r * cols() + c];
      out += " " + pad_left(v ? format_number(*v, digits) : "", col_w[c]);
    }
    out += "\n";
  }
  return out;
}

std::string render_side_by_side(const std::vector<HeatMap>& maps, int digits) {
  std::vector<std::vector<std::string>> blocks;
  std::size_t max_lines = 0;
  for (const auto& m : maps) {
    blocks.push_back(split_lines(m.render(digits)));
    max_lines = std::max(max_lines, blocks.back().size());
  }
  std::vector<std::size_t> block_w(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (const auto& line : blocks[b]) {
      block_w[b] = std::max(block_w[b], line.size());
    }
  }
  std::string out;
  for (std::size_t i = 0; i < max_lines; ++i) {
    std::string line;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      const std::string& src = i < blocks[b].size() ? blocks[b][i] : std::string();
      line += pad_right(src, block_w[b] + 4);
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line + "\n";
  }
  return out;
}

}  // namespace pareval::support
