#include "support/par.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace pareval::support {

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

struct ThreadPool::WorkerQueue {
  std::mutex mu;
  std::deque<std::function<void()>> tasks;       // Normal lane
  std::deque<std::function<void()>> high_tasks;  // High lane, drained first
};

struct ThreadPool::State {
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> workers;
  std::mutex sleep_mu;
  std::condition_variable wake;
  std::atomic<std::size_t> pending{0};
  // High-lane occupancy, so the all-Normal hot path (every pop, absent any
  // High submission) skips the whole-pool High sweep without taking locks.
  std::atomic<std::size_t> high_pending{0};
  std::atomic<std::size_t> next_queue{0};
  std::atomic<bool> stopping{false};
  // Threads idling inside help_until on the wake cv. notify_one would be
  // consumed by a sleeping worker and leave a helper napping through its
  // full backoff interval; push() broadcasts when any helper is asleep.
  std::atomic<unsigned> helpers_sleeping{0};
};

namespace {
// Which pool (if any) the current thread is a worker of, and its queue
// index there. Lets submit() push to the worker's own deque and lets
// run_pending_task() prefer local work before stealing. Typed as void* only
// for identity comparison — State stays private to ThreadPool.
thread_local const void* tls_pool_state = nullptr;
thread_local unsigned tls_worker_index = 0;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  worker_count_ = threads == 0 ? hardware_threads() : threads;
  state_ = std::make_shared<State>();
  state_->queues.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i) {
    state_->queues.push_back(std::make_unique<WorkerQueue>());
  }
  state_->workers.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i) {
    state_->workers.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  state_->stopping.store(true, std::memory_order_release);
  {
    // The lock pairs with the workers' predicate check: without it a worker
    // could test `stopping`, miss the flag, and sleep through this notify.
    std::lock_guard<std::mutex> lock(state_->sleep_mu);
  }
  state_->wake.notify_all();
  for (auto& w : state_->workers) w.join();
  // A worker exits when it observes `stopping` with nothing pending, but a
  // still-running task on ANOTHER worker may submit after that
  // observation; if its own worker also happens to have exited by the
  // time the push lands, the task would sit in a deque forever. Sweep the
  // queues from the destroying thread so every task whose submit()
  // returned gets executed (tasks those tasks submit included).
  while (run_pending_task()) {
  }
}

void ThreadPool::drain() {
  help_until([this] {
    return state_->pending.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::push(std::function<void()> task, TaskPriority priority) {
  unsigned index;
  if (tls_pool_state == state_.get()) {
    index = tls_worker_index;  // nested submission: keep it local
  } else {
    index = static_cast<unsigned>(
        state_->next_queue.fetch_add(1, std::memory_order_relaxed) %
        worker_count_);
  }
  // Count High occupancy BEFORE the task becomes poppable: a pop can then
  // never decrement ahead of its task's increment, so the counter cannot
  // wrap below zero — at worst it transiently overcounts, costing one
  // wasted (empty) High sweep.
  if (priority == TaskPriority::High) {
    state_->high_pending.fetch_add(1, std::memory_order_release);
  }
  {
    WorkerQueue& q = *state_->queues[index];
    std::lock_guard<std::mutex> lock(q.mu);
    (priority == TaskPriority::High ? q.high_tasks : q.tasks)
        .push_back(std::move(task));
  }
  {
    // The increment must not land between a worker's predicate check and
    // its block, or the notify below is lost and the task sits until the
    // next submission; holding sleep_mu orders it before or after both.
    std::lock_guard<std::mutex> lock(state_->sleep_mu);
    state_->pending.fetch_add(1, std::memory_order_release);
  }
  if (state_->helpers_sleeping.load(std::memory_order_acquire) > 0) {
    state_->wake.notify_all();  // prompt wakeup for backed-off helpers
  } else {
    state_->wake.notify_one();
  }
}

bool ThreadPool::try_pop(std::function<void()>& out) {
  const bool is_worker = tls_pool_state == state_.get();
  const unsigned self = is_worker ? tls_worker_index : 0;
  // Both lanes follow the same discipline — own deque back first (LIFO:
  // newest, cache-warm, nested children), then steal from the front of
  // peers' deques (FIFO: oldest first) — but the High lane is swept across
  // every queue before any Normal task is considered, so an executor never
  // starts normal work while a high-priority task is pending anywhere.
  // The sweep itself is gated on an occupancy counter: an all-Normal
  // workload (the common case) pays one relaxed load, not a lock per
  // queue, to learn the High lane is empty.
  for (const bool high : {true, false}) {
    if (high &&
        state_->high_pending.load(std::memory_order_acquire) == 0) {
      continue;
    }
    auto lane = [high](WorkerQueue& q) -> std::deque<std::function<void()>>& {
      return high ? q.high_tasks : q.tasks;
    };
    auto take = [&](WorkerQueue& q, bool back) {
      out = back ? std::move(lane(q).back()) : std::move(lane(q).front());
      back ? lane(q).pop_back() : lane(q).pop_front();
      state_->pending.fetch_sub(1, std::memory_order_relaxed);
      if (high) state_->high_pending.fetch_sub(1, std::memory_order_relaxed);
    };
    if (is_worker) {
      WorkerQueue& q = *state_->queues[self];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!lane(q).empty()) {
        take(q, /*back=*/true);
        return true;
      }
    }
    for (unsigned k = 0; k < worker_count_; ++k) {
      const unsigned victim = (self + 1 + k) % worker_count_;
      if (is_worker && victim == self) continue;
      WorkerQueue& q = *state_->queues[victim];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!lane(q).empty()) {
        take(q, /*back=*/false);
        return true;
      }
    }
  }
  return false;
}

bool ThreadPool::run_pending_task() {
  std::function<void()> task;
  if (!try_pop(task)) return false;
  task();
  return true;
}

void ThreadPool::help_until(const std::function<bool()>& done) {
  // Idle backoff: a few yields for short waits, then bounded exponential
  // sleeps on the wake cv. push() broadcasts while helpers sleep, so new
  // work still gets prompt pickup; `done()` turning true with no
  // accompanying push (an in-flight task completing) is observed within
  // one capped nap. An idle helper therefore burns ~no CPU instead of
  // yield-spinning a core.
  constexpr unsigned kSpinRounds = 16;
  constexpr unsigned kNapFloorUs = 32;
  constexpr unsigned kNapCapShift = 6;  // 32us << 6 = ~2ms max nap
  State& s = *state_;
  unsigned idle = 0;
  while (!done()) {
    if (run_pending_task()) {
      idle = 0;
      continue;
    }
    ++idle;
    if (idle <= kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    const unsigned shift = std::min(idle - kSpinRounds, kNapCapShift);
    const auto nap = std::chrono::microseconds(kNapFloorUs << shift);
    std::unique_lock<std::mutex> lock(s.sleep_mu);
    if (s.pending.load(std::memory_order_acquire) > 0) continue;
    s.helpers_sleeping.fetch_add(1, std::memory_order_release);
    s.wake.wait_for(lock, nap, [&] {
      return s.pending.load(std::memory_order_acquire) > 0 ||
             s.stopping.load(std::memory_order_acquire);
    });
    s.helpers_sleeping.fetch_sub(1, std::memory_order_release);
  }
}

void ThreadPool::worker_loop(unsigned index) {
  tls_pool_state = state_.get();
  tls_worker_index = index;
  State& s = *state_;
  while (true) {
    std::function<void()> task;
    if (try_pop(task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(s.sleep_mu);
    s.wake.wait(lock, [&] {
      return s.stopping.load(std::memory_order_acquire) ||
             s.pending.load(std::memory_order_acquire) > 0;
    });
    if (s.stopping.load(std::memory_order_acquire) &&
        s.pending.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  tls_pool_state = nullptr;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (begin >= end) return;
  if (threads == 0) threads = hardware_threads();
  const std::size_t n = end - begin;
  const unsigned executors =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));
  if (executors <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Dynamic scheduling: `executors` claimers share one atomic index. The
  // caller is one executor; the other executors run as pool tasks, so the
  // concurrency cap holds even when the pool has more workers.
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto claim_loop = [&] {
    try {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        body(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  ThreadPool& pool = ThreadPool::global();
  std::vector<std::future<void>> helpers;
  helpers.reserve(executors - 1);
  for (unsigned t = 0; t + 1 < executors; ++t) {
    helpers.push_back(pool.submit(claim_loop));
  }
  claim_loop();
  // claim_loop swallows exceptions into first_error, so await() here only
  // waits; it cannot rethrow. Helping while waiting keeps nested
  // parallel_for calls deadlock-free on a saturated pool.
  for (auto& h : helpers) pool.await(h);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pareval::support
