#include "support/par.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pareval::support {

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (begin >= end) return;
  if (threads == 0) threads = hardware_threads();
  const std::size_t n = end - begin;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));
  if (threads <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    try {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        body(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pareval::support
