#pragma once
// Deterministic pseudo-random number generation for the simulation harness.
//
// Everything in the harness that is stochastic (defect injection, sample
// generation, word2vec negative sampling) draws from these generators so that
// every experiment is reproducible from a single 64-bit seed.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pareval::support {

/// SplitMix64: used to seed larger-state generators and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the harness's main generator. Fast, high quality, and
/// trivially seedable from SplitMix64 per the reference implementation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless bounded generation, simplified.
    return next_u64() % bound;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Sample an index proportionally to non-negative weights.
  /// Returns weights.size() if all weights are zero or the span is empty.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Split off an independent child generator (seeded from this stream).
  Rng split() noexcept { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Stable 64-bit FNV-1a hash of a byte string; used to derive per-task seeds
/// from configuration names so adding tasks does not perturb other tasks.
std::uint64_t stable_hash(std::span<const char> bytes) noexcept;
std::uint64_t stable_hash(const std::string& s) noexcept;

}  // namespace pareval::support
