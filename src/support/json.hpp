#pragma once
// Minimal JSON value + parser/serializer for the harness's on-disk
// artifacts: shard files, merged sweeps, and the persistent score cache.
//
// Deliberately not a general-purpose library. The properties the sweep
// subsystem actually needs are guaranteed instead:
//  - objects preserve insertion order, so serialization is deterministic
//    (byte-identical files for identical values);
//  - integers round-trip exactly as long long (cache keys and seeds are
//    carried as hex strings, token counts as integers);
//  - doubles serialize with round-trip precision (shortest of %.15g/%.16g/
//    %.17g that parses back bit-identical), so TaskResult::avg_tokens
//    survives a save/load cycle under operator==.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pareval::support {

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };
  using Member = std::pair<std::string, Json>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(int v) : type_(Type::Int), int_(v) {}
  Json(long long v) : type_(Type::Int), int_(v) {}
  Json(double v) : type_(Type::Double), dbl_(v) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}

  static Json array() { Json j; j.type_ = Type::Array; return j; }
  static Json object() { Json j; j.type_ = Type::Object; return j; }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  bool is_number() const noexcept {
    return type_ == Type::Int || type_ == Type::Double;
  }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  long long as_int(long long fallback = 0) const noexcept {
    if (type_ == Type::Int) return int_;
    if (type_ == Type::Double) return static_cast<long long>(dbl_);
    return fallback;
  }
  double as_double(double fallback = 0.0) const noexcept {
    if (type_ == Type::Double) return dbl_;
    if (type_ == Type::Int) return static_cast<double>(int_);
    return fallback;
  }
  const std::string& as_string() const noexcept;

  /// Array element count / object member count; 0 for scalars.
  std::size_t size() const noexcept;
  /// Array element by index (a shared null when out of range / not array).
  const Json& at(std::size_t i) const noexcept;
  const std::vector<Json>& items() const noexcept { return arr_; }

  /// Object member lookup; nullptr / a shared null when absent.
  const Json* find(std::string_view key) const noexcept;
  const Json& operator[](std::string_view key) const noexcept;
  const std::vector<Member>& members() const noexcept { return obj_; }

  /// Object append-or-replace (turns a Null into an Object).
  void set(std::string key, Json value);
  /// Array append (turns a Null into an Array).
  void push_back(Json value);

  /// Compact serialization (no whitespace). Non-finite doubles emit null.
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  /// On failure returns nullopt and, when `error` is non-null, a
  /// "byte N: message" diagnostic.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

  bool operator==(const Json&) const = default;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  long long int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<Member> obj_;
};

}  // namespace pareval::support
