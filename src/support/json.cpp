#include "support/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pareval::support {

namespace {
const Json kNull;
const std::string kEmpty;
}  // namespace

const std::string& Json::as_string() const noexcept {
  return type_ == Type::String ? str_ : kEmpty;
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const noexcept {
  if (type_ != Type::Array || i >= arr_.size()) return kNull;
  return arr_[i];
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Json& Json::operator[](std::string_view key) const noexcept {
  const Json* j = find(key);
  return j != nullptr ? *j : kNull;
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::Null) type_ = Type::Object;
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (type_ == Type::Null) type_ = Type::Array;
  arr_.push_back(std::move(value));
}

// --- serialization ----------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // UTF-8 (and any high byte) passes through verbatim
        }
    }
  }
  out += '"';
}

void dump_double(double v, std::string& out) {
  if (!std::isfinite(v)) {  // JSON has no NaN/Inf
    out += "null";
    return;
  }
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
  // Keep the double/int distinction visible so a round trip restores the
  // same Json type ("1" parses as Int, "1.0" as Double).
  if (std::strpbrk(buf, ".eEn") == nullptr) out += ".0";
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null:
      out += "null";
      return;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Type::Int: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld", int_);
      out += buf;
      return;
    }
    case Type::Double:
      dump_double(dbl_, out);
      return;
    case Type::String:
      dump_string(str_, out);
      return;
    case Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& j : arr_) {
        if (!first) out += ',';
        first = false;
        j.dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::Object: {
      out += '{';
      bool first = true;
      for (const Member& m : obj_) {
        if (!first) out += ',';
        first = false;
        dump_string(m.first, out);
        out += ':';
        m.second.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_to(out);
  return out;
}

// --- parsing ----------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 192;

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  std::string err;

  bool fail(const char* msg) {
    if (err.empty()) {
      err = "byte " + std::to_string(i) + ": " + msg;
    }
    return false;
  }

  void skip_ws() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
      ++i;
    }
  }

  bool consume(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return fail("invalid literal");
    i += word.size();
    return true;
  }

  static void encode_utf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool parse_hex4(unsigned* out) {
    if (i + 4 > s.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s[i + k];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid \\u escape");
    }
    i += 4;
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    while (true) {
      if (i >= s.size()) return fail("unterminated string");
      const char c = s[i++];
      if (c == '"') return true;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return fail("raw control character in string");
        }
        *out += c;
        continue;
      }
      if (i >= s.size()) return fail("unterminated escape");
      const char e = s[i++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xd800 && cp < 0xdc00 && s.substr(i, 2) == "\\u") {
            i += 2;
            unsigned lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo < 0xdc00 || lo > 0xdfff) return fail("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          }
          encode_utf8(cp, *out);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_number(Json* out) {
    const std::size_t start = i;
    if (consume('-')) {
    }
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      integral = false;
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    }
    const std::string text(s.substr(start, i - start));
    if (text.empty() || text == "-") return fail("invalid number");
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == 0 && end == text.c_str() + text.size()) {
        *out = Json(v);
        return true;
      }
      // fall through to double on int64 overflow
    }
    errno = 0;
    const double d = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return fail("invalid number");
    *out = Json(d);
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    switch (s[i]) {
      case 'n':
        return literal("null") && (*out = Json(), true);
      case 't':
        return literal("true") && (*out = Json(true), true);
      case 'f':
        return literal("false") && (*out = Json(false), true);
      case '"': {
        std::string str;
        if (!parse_string(&str)) return false;
        *out = Json(std::move(str));
        return true;
      }
      case '[': {
        ++i;
        *out = Json::array();
        skip_ws();
        if (consume(']')) return true;
        while (true) {
          Json elem;
          if (!parse_value(&elem, depth + 1)) return false;
          out->push_back(std::move(elem));
          skip_ws();
          if (consume(']')) return true;
          if (!consume(',')) return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++i;
        *out = Json::object();
        skip_ws();
        if (consume('}')) return true;
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':'");
          Json value;
          if (!parse_value(&value, depth + 1)) return false;
          out->set(std::move(key), std::move(value));
          skip_ws();
          if (consume('}')) return true;
          if (!consume(',')) return fail("expected ',' or '}'");
        }
      }
      default:
        return parse_number(out);
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser p;
  p.s = text;
  Json out;
  if (!p.parse_value(&out, 0)) {
    if (error != nullptr) *error = p.err;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.i != text.size()) {
    p.fail("trailing characters after document");
    if (error != nullptr) *error = p.err;
    return std::nullopt;
  }
  return out;
}

}  // namespace pareval::support
