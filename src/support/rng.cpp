#include "support/rng.hpp"

#include <string>

namespace pareval::support {

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;  // numeric slop lands on the last bucket
}

std::uint64_t stable_hash(std::span<const char> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t stable_hash(const std::string& s) noexcept {
  return stable_hash(std::span<const char>(s.data(), s.size()));
}

}  // namespace pareval::support
