#include "support/io.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace pareval::support {

namespace {

/// Full-buffer write() with EINTR retry. Returns false on any failure or
/// short write.
bool write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory containing `path`, so a rename/create inside it is
/// durable — without this a crash right after rename can resurface the
/// old (or no) directory entry on some filesystems. Best-effort on
/// platforms where directories cannot be opened for fsync.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool atomic_write_file(const std::string& path,
                       const std::string& content) {
  static std::atomic<unsigned> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  // Data must be durable BEFORE the rename publishes the name: rename is
  // atomic for readers, but only fsync orders the content ahead of the
  // directory update across a crash.
  bool ok = write_all(fd, content);
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

bool append_file(const std::string& path, std::string_view data) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = write_all(fd, data);
  // Journal appends promise the record is on disk when we return — the
  // torn-tail recovery handles a crash mid-write, but a record we
  // acknowledged must survive one.
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  return ok;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buf.str();
}

std::size_t file_size(const std::string& path) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(n);
}

bool make_dirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return false;
  return std::filesystem::is_directory(path, ec);
}

FileLock::FileLock(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return;
  while (::flock(fd_, LOCK_EX) != 0) {
    if (errno == EINTR) continue;
    ::close(fd_);
    fd_ = -1;
    return;
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace pareval::support
