#include "support/io.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>

namespace pareval::support {

bool atomic_write_file(const std::string& path,
                       const std::string& content) {
  static std::atomic<unsigned> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    out.close();
    if (out.fail()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace pareval::support
