#include "support/io.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace pareval::support {

bool atomic_write_file(const std::string& path,
                       const std::string& content) {
  static std::atomic<unsigned> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    out.close();
    if (out.fail()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool append_file(const std::string& path, std::string_view data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  bool ok = true;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) ok = false;
  return ok;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buf.str();
}

std::size_t file_size(const std::string& path) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(n);
}

bool make_dirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return false;
  return std::filesystem::is_directory(path, ec);
}

FileLock::FileLock(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return;
  while (::flock(fd_, LOCK_EX) != 0) {
    if (errno == EINTR) continue;
    ::close(fd_);
    fd_ = -1;
    return;
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace pareval::support
