// Translate any suite application between models and dump the resulting
// repository. Usage: translate_repo [app] [cuda2omp|cuda2kokkos|omp2omp]
#include <cstdio>
#include <cstring>

#include "pareval/pareval.hpp"

using namespace pareval;

int main(int argc, char** argv) {
  const char* app_name = argc > 1 ? argv[1] : "microXOR";
  const char* pair_name = argc > 2 ? argv[2] : "cuda2omp";
  const apps::AppSpec* app = apps::find_app(app_name);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'\n", app_name);
    return 1;
  }
  llm::Pair pair = llm::all_pairs()[0];
  if (std::strcmp(pair_name, "cuda2kokkos") == 0) pair = llm::all_pairs()[1];
  if (std::strcmp(pair_name, "omp2omp") == 0) pair = llm::all_pairs()[2];
  if (app->repos.count(pair.from) == 0) {
    std::fprintf(stderr, "%s has no %s implementation\n", app_name,
                 apps::model_name(pair.from));
    return 1;
  }
  xlate::TranspileLog log;
  const vfs::Repo out = xlate::transpile_repo(*app, pair.from, pair.to, log);
  std::printf("translated %s: %s\n\nfile tree:\n%s\n", app_name,
              llm::pair_name(pair).c_str(), out.render_tree().c_str());
  for (const auto& f : out.files()) {
    std::printf("===== %s =====\n%s\n", f.path.c_str(), f.content.c_str());
  }
  for (const auto& [from, to] : log.file_renames) {
    std::printf("renamed %s -> %s\n", from.c_str(), to.c_str());
  }
  const auto build = buildsim::build_repo(out);
  std::printf("\nbuild of the translation: %s\n", build.ok ? "ok" : "FAILED");
  return 0;
}
