// Extensibility: evaluate your own "LLM" against the benchmark. A custom
// translator only needs to produce a repository; ParEval-Repo's scoring
// (build + validate + device check) and prompts are reusable as-is. Here
// the "LLM" is the reference transpiler with one deliberate flaw: it
// always forgets `target` on the combined construct (the paper's
// Listing 4 bug) — and the harness catches it as a wrong answer.
//
// Everything resolves through the Suite registries (no global lookups)
// and scores flow through an injected ScoreCache, so two such evaluations
// can coexist in one process. To register a custom model as a first-class
// sweep column — with its own capability calibration, runnable via
// run_sweep and the --spec tools — see examples/custom_suite.cpp.
#include <cstdio>

#include "pareval/pareval.hpp"
#include "support/strings.hpp"
#include "text/tokens.hpp"

using namespace pareval;

int main() {
  const eval::Suite& suite = eval::Suite::paper();
  const apps::AppSpec* app = suite.find_app("nanoXOR");
  const llm::Pair pair = suite.pairs()[0];

  // The prompt your model would receive (paper Listing 1).
  const std::string prompt = agents::build_nonagentic_prompt(
      *app, app->repos.at(pair.from), "src/main.cu", pair);
  std::printf("prompt for src/main.cu: %lld tokens\n\n",
              text::approx_tokens(prompt));

  // "Generate" a translation with the deliberate Listing-4 flaw.
  xlate::TranspileLog log;
  vfs::Repo repo = xlate::transpile_repo(*app, pair.from, pair.to, log);
  repo.write("src/main.cpp",
             support::replace_all(
                 repo.at("src/main.cpp"),
                 "#pragma omp target teams distribute parallel for",
                 "#pragma omp teams distribute"));

  // Score through an injected cache — the same instance HarnessConfig
  // would carry into a full sweep (config.score_cache = &cache). The
  // result is staged: one structured outcome per Build/Execute/Validate
  // stage, with the legacy blob available as flat_log().
  eval::ScoreCache cache;
  const auto score = cache.score(*app, repo, pair.to);
  std::printf("build: %s\nvalidation: %s\n", score.built ? "ok" : "FAILED",
              score.passed ? "ok" : "FAILED (as expected: the loop never "
                                    "ran on the GPU)");
  std::printf("\nstages:\n");
  for (const auto& stage : score.stages) {
    std::printf("  %-8s %-4s %s\n", eval::stage_key(stage.stage),
                eval::stage_verdict_key(stage.verdict),
                stage.detail.c_str());
  }
  std::printf("\nscore log:\n%s\n", score.flat_log().c_str());
  return 0;
}
