// Quickstart: translate nanoXOR from CUDA to OpenMP offload with one
// simulated LLM, score it the way the benchmark does, and print the
// paper's Listing 2/3 pair (original CUDA kernel + its translation).
#include <cstdio>

#include "pareval/pareval.hpp"

using namespace pareval;

int main() {
  const apps::AppSpec* app = apps::find_app("nanoXOR");
  const llm::Pair pair = llm::all_pairs()[0];  // CUDA -> OpenMP Offload

  // 1. The original CUDA kernel (paper Listing 2).
  std::printf("--- original src/main.cu (CUDA) ---\n%s\n",
              app->repos.at(apps::Model::Cuda).at("src/main.cu").c_str());

  // 2. A reference translation (what a perfect model would produce).
  xlate::TranspileLog log;
  const vfs::Repo translated =
      xlate::transpile_repo(*app, pair.from, pair.to, log);
  std::printf("--- translated src/main.cpp (OpenMP offload) ---\n%s\n",
              translated.at("src/main.cpp").c_str());

  // 3. One simulated-LLM attempt (o4-mini), scored like the benchmark.
  const llm::LlmProfile* profile = llm::find_profile("o4-mini");
  support::Rng rng(42);
  const auto attempt = agents::run_technique(
      *app, llm::Technique::NonAgentic, *profile, pair, rng);
  std::printf("generated with %s: %lld input + %lld output tokens, %zu "
              "injected defect(s)\n",
              profile->name.c_str(), attempt.input_tokens,
              attempt.output_tokens, attempt.defects.size());
  const auto score = eval::score_repo(*app, attempt.repo, pair.to);
  std::printf("build: %s, validation: %s\n", score.built ? "ok" : "FAILED",
              score.passed ? "ok" : "FAILED");
  if (!score.passed) std::printf("log:\n%s\n", score.log.c_str());
  return 0;
}
