// Run a reduced sweep and push the failure logs through the §6.3
// classification pipeline: word2vec embeddings -> DBSCAN -> labelled
// categories. Prints the category counts and a few example logs.
#include <cstdio>

#include "pareval/pareval.hpp"

using namespace pareval;

int main() {
  eval::HarnessConfig cfg;
  cfg.samples_per_task = 8;
  std::printf("running a reduced CUDA->OpenMP Offload sweep (N=8)...\n");
  const auto tasks = eval::run_pair_sweep(llm::all_pairs()[0], cfg);
  const auto result = eval::classify_failures(tasks);
  std::printf("collected %zu failure logs; DBSCAN found %d raw clusters\n",
              result.logs.size(), result.raw_clusters);
  std::printf("per-sample labels: %d exact from stage provenance, %d via "
              "the keyword fallback\n\n",
              result.provenance_exact, result.keyword_fallback);
  for (const auto& [kind, by_app] : result.counts) {
    int total = 0;
    for (const auto& [app, by_llm] : by_app) {
      for (const auto& [llm_name, n] : by_llm) total += n;
    }
    std::printf("%-36s %d\n", xlate::defect_name(kind), total);
  }
  std::printf("\nexample logs:\n");
  int shown = 0;
  for (const auto& log : result.logs) {
    if (!log.labelled || shown >= 3) continue;
    std::printf("--- [%s] %s / %s ---\n%.300s\n",
                xlate::defect_name(log.label), log.llm.c_str(),
                log.app.c_str(), log.log.c_str());
    ++shown;
  }
  return 0;
}
