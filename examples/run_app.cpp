// Build and run a shipped suite application under the simulated toolchains
// and GPU. Usage: run_app [app] [model] [args...]
#include <cstdio>
#include <cstring>

#include "pareval/pareval.hpp"

using namespace pareval;

int main(int argc, char** argv) {
  const char* app_name = argc > 1 ? argv[1] : "XSBench";
  const char* model_name = argc > 2 ? argv[2] : "CUDA";
  const apps::AppSpec* app = apps::find_app(app_name);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'\n", app_name);
    return 1;
  }
  apps::Model model = apps::Model::Cuda;
  if (std::strcmp(model_name, "omp") == 0) model = apps::Model::OmpThreads;
  if (app->repos.count(model) == 0) {
    std::fprintf(stderr, "%s ships no %s implementation\n", app_name,
                 apps::model_name(model));
    return 1;
  }
  const auto build = buildsim::build_repo(app->repos.at(model));
  if (!build.ok) {
    std::fprintf(stderr, "build failed:\n%s\n", build.log.c_str());
    return 1;
  }
  std::vector<std::string> args;
  for (int i = 3; i < argc; ++i) args.emplace_back(argv[i]);
  const auto run = execsim::run_executable(*build.exe, args);
  std::printf("%s", run.stdout_text.c_str());
  std::fprintf(stderr, "%s", run.stderr_text.c_str());
  std::printf("[device kernel launches: %lld, H2D copies: %lld, D2H "
              "copies: %lld]\n",
              run.stats.device_kernel_launches, run.stats.h2d_copies,
              run.stats.d2h_copies);
  return run.exit_code;
}
