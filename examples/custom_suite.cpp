// Extensibility, the declarative way: build a Suite that registers
//   1. a new application ("picoXOR", a 1D variant of the XOR stencil that
//      the standard registry does not know about),
//   2. a custom LLM profile ("tabby-200k") with its own capability scores,
//   3. a *reverse* translation pair (OpenMP Threads -> CUDA) that the
//      paper never evaluates,
// then select a slice of it with a SweepSpec, run the sweep, and print its
// mini heat map. No harness code is touched: a new benchmark is a Suite, a
// sweep subset is a spec. Paper-suite specs work unchanged with the stock
// --spec tools; a spec naming *custom* registrations (like this one) runs
// through the same run_sweep/run_shard/merge_shards calls from a driver
// that links its suite — this file is that driver.
#include <cstdio>

#include "apps/xor_common.hpp"
#include "pareval/pareval.hpp"
#include "support/strings.hpp"

using namespace pareval;

namespace {

/// A scoreable application the standard registry does not ship: the XOR
/// stencil reduced to one dimension, with OMP-threads and CUDA sources.
apps::AppSpec make_picoxor() {
  apps::AppSpec a;
  a.name = "picoXOR";
  a.description = "1D XOR stencil; the suite-registration demo app.";
  // Reuse the 2D stencil's contract: tests, golden reference, CLI spec,
  // and ground-truth build files all transfer.
  apps::xor_fill_common(a, "picoXOR", {"src/main.cpp"}, {"src/main.cpp"});

  vfs::Repo omp;
  omp.write("Makefile",
            "CXX = g++\n"
            "CXXFLAGS = -O2 -fopenmp\n\n"
            "all: picoXOR\n\n"
            "picoXOR: src/main.cpp\n"
            "\t$(CXX) $(CXXFLAGS) src/main.cpp -o picoXOR\n\n"
            "clean:\n\trm -f picoXOR\n");
  omp.write("README.md", "# picoXOR\n\nUsage: ./picoXOR [N] [iterations]\n");
  omp.write("src/main.cpp", apps::xor_omp_main("", /*kernel_inline=*/true));
  a.repos[apps::Model::OmpThreads] = std::move(omp);

  vfs::Repo cuda;
  cuda.write("Makefile",
             "NVCC = nvcc\n"
             "NVCCFLAGS = -O2 -arch=sm_80\n\n"
             "all: picoXOR\n\n"
             "picoXOR: src/main.cu\n"
             "\t$(NVCC) $(NVCCFLAGS) src/main.cu -o picoXOR\n\n"
             "clean:\n\trm -f picoXOR\n");
  cuda.write("README.md", "# picoXOR\n\nUsage: ./picoXOR [N] [iterations]\n");
  cuda.write("src/main.cu", apps::xor_cuda_main("", /*kernel_inline=*/true));
  a.repos[apps::Model::Cuda] = std::move(cuda);
  return a;
}

}  // namespace

int main() {
  // --- 1. the suite: paper sets + one app, one LLM, one reverse pair ----
  const llm::Pair reverse{apps::Model::OmpThreads, apps::Model::Cuda};

  llm::LlmProfile tabby;
  tabby.name = "tabby-200k";
  tabby.context_tokens = 200000;
  tabby.max_output_tokens = 20000;
  tabby.usd_per_mtok_input = 0.50;
  tabby.usd_per_mtok_output = 2.00;
  tabby.topdown_context_fraction = 0.5;

  eval::Suite suite = eval::Suite::paper();  // copy, then extend
  suite.add_app(make_picoxor())
      .add_profile(tabby)
      .add_pair(reverse)
      // How capable is tabby? Without this, unknown (llm, pair) cells
      // abort for lack of paper calibration. Profile-wide default first...
      .set_profile_scores("tabby-200k",
                          {/*code_build=*/0.9, /*code_pass=*/0.7,
                           /*overall_build=*/0.8, /*overall_pass=*/0.6})
      // ...and one pinned cell to show per-cell overrides win.
      .set_cell_scores("tabby-200k", llm::Technique::NonAgentic, reverse,
                       "picoXOR",
                       {/*code_build=*/1.0, /*code_pass=*/1.0,
                        /*overall_build=*/1.0, /*overall_pass=*/1.0});

  // --- 2. the spec: a declarative slice of that suite -------------------
  eval::SweepSpec spec;
  spec.llms = {"tabby-200k"};
  spec.pairs = {llm::pair_key({apps::Model::Cuda, apps::Model::OmpOffload}),
                llm::pair_key(reverse)};
  spec.apps = {"nanoXOR", "picoXOR"};
  spec.techniques = {llm::technique_key(llm::Technique::NonAgentic)};
  spec.samples_per_task = 10;
  spec.seed = 1070;

  const std::string invalid = spec.validate(suite);
  if (!invalid.empty()) {
    std::fprintf(stderr, "invalid spec: %s\n", invalid.c_str());
    return 1;
  }
  std::printf("spec %s selects %zu cells; as JSON:\n%s\n",
              support::u64_to_hex(eval::spec_hash(spec)).c_str(),
              eval::sweep_cells(suite, spec).size(),
              eval::spec_file_text(spec).c_str());

  // --- 3. run + report ---------------------------------------------------
  eval::ScoreCache cache;  // injected, not the process-wide global
  eval::HarnessConfig config;
  config.score_cache = &cache;
  const auto tasks = eval::run_sweep(suite, spec, config);

  std::printf("%s", eval::figure2_reports(suite, spec, tasks).c_str());
  std::printf(
      "(the OMP->CUDA cells build but never pass: the harness's device "
      "check rejects translations that never launch a GPU kernel — the "
      "reference engine has no reverse-transform rules, exactly what a "
      "real reverse-pair benchmark would measure)\n");
  std::printf("\nscore cache: score layer %zu hits / %zu misses, build "
              "layer %zu hits / %zu misses\n",
              cache.hits(), cache.misses(), cache.builds().hits(),
              cache.builds().misses());

  // A custom suite persists its cache under its *own* scoring-pipeline
  // hash, so a file produced here can never warm-start a sweep of a
  // different suite (and vice versa) — version-level invalidation on top
  // of the per-entry keys.
  const std::uint64_t version = eval::scoring_pipeline_hash(suite);
  std::printf("suite pipeline hash %s (paper: %s)\n",
              support::u64_to_hex(version).c_str(),
              support::u64_to_hex(eval::scoring_pipeline_hash()).c_str());
  if (cache.save("custom_suite_cache.json", version)) {
    std::printf("persisted the suite's cache to custom_suite_cache.json\n");
  }
  return 0;
}
