// Tests for the text/embedding and clustering substrates (§6.3).

#include <gtest/gtest.h>

#include "cluster/dbscan.hpp"
#include "support/rng.hpp"
#include "text/tokens.hpp"
#include "text/word2vec.hpp"

namespace pt = pareval::text;
namespace pc = pareval::cluster;

TEST(Tokens, ApproxTokensScalesWithLength) {
  EXPECT_EQ(pt::approx_tokens(""), 0);
  EXPECT_EQ(pt::approx_tokens("int"), 1);
  EXPECT_EQ(pt::approx_tokens("x = y;"), 4);  // x, =, y, ;
  EXPECT_GT(pt::approx_tokens("cudaMemcpyHostToDevice"),
            pt::approx_tokens("int"));
  const std::string code = "for (int i = 0; i < n; i++) { a[i] = b[i]; }";
  EXPECT_GT(pt::approx_tokens(code), 15);
  EXPECT_LT(pt::approx_tokens(code), 40);
}

TEST(Tokens, WordTokensLowercasesAndSplits) {
  const auto words = pt::word_tokens("Error: use of UNDECLARED identifier");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[0], "error");
  EXPECT_EQ(words[2], "of");
  EXPECT_EQ(words[3], "undeclared");
}

TEST(Word2Vec, SimilarContextsYieldSimilarVectors) {
  // "paris"/"london" share contexts; "banana" does not.
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 60; ++i) {
    docs.push_back({"the", "city", "of", i % 2 ? "paris" : "london", "is",
                    "big"});
    docs.push_back({"eat", "a", "ripe", "banana", "now"});
  }
  pt::Word2Vec w2v;
  pt::Word2VecConfig cfg;
  cfg.epochs = 20;
  w2v.train(docs, cfg);
  EXPECT_GT(w2v.cosine("paris", "london"), w2v.cosine("paris", "banana"));
}

TEST(Word2Vec, DocumentEmbeddingIsMeanOfWords) {
  std::vector<std::vector<std::string>> docs = {{"aa", "bb"}, {"bb", "cc"}};
  pt::Word2Vec w2v;
  w2v.train(docs);
  const auto va = w2v.embed_word("aa");
  const auto vb = w2v.embed_word("bb");
  const auto doc = w2v.embed_document({"aa", "bb"});
  for (std::size_t k = 0; k < doc.size(); ++k) {
    EXPECT_NEAR(doc[k], (va[k] + vb[k]) / 2.0, 1e-12);
  }
}

TEST(Word2Vec, OovIsZeroVector) {
  pt::Word2Vec w2v;
  w2v.train({{"x", "y"}});
  for (const double v : w2v.embed_word("zzz")) EXPECT_EQ(v, 0.0);
}

TEST(Word2Vec, DeterministicForFixedSeed) {
  std::vector<std::vector<std::string>> docs = {
      {"a", "b", "c"}, {"b", "c", "d"}, {"c", "d", "a"}};
  pt::Word2Vec w1, w2;
  w1.train(docs);
  w2.train(docs);
  EXPECT_EQ(w1.embed_word("a"), w2.embed_word("a"));
}

TEST(Dbscan, SeparatesWellSpacedBlobs) {
  pareval::support::Rng rng(3);
  std::vector<std::vector<double>> pts;
  for (int blob = 0; blob < 3; ++blob) {
    for (int i = 0; i < 20; ++i) {
      pts.push_back({blob * 10.0 + rng.uniform(-0.2, 0.2),
                     blob * 10.0 + rng.uniform(-0.2, 0.2)});
    }
  }
  const auto labels = pc::dbscan(pts, {1.0, 3});
  EXPECT_EQ(pc::cluster_count(labels), 3);
  // All points in the same blob share a label.
  for (int blob = 0; blob < 3; ++blob) {
    for (int i = 1; i < 20; ++i) {
      EXPECT_EQ(labels[blob * 20], labels[blob * 20 + i]);
    }
  }
}

TEST(Dbscan, IsolatedPointsAreNoise) {
  std::vector<std::vector<double>> pts = {
      {0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},  // dense blob
      {50, 50},                                 // loner
  };
  const auto labels = pc::dbscan(pts, {0.5, 3});
  EXPECT_EQ(pc::cluster_count(labels), 1);
  EXPECT_EQ(labels[4], -1);
}

TEST(Dbscan, EpsControlsMerging) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({i * 1.0});
  // Chain of points 1 apart: big eps -> one cluster, tiny eps -> noise.
  EXPECT_EQ(pc::cluster_count(pc::dbscan(pts, {1.5, 3})), 1);
  EXPECT_EQ(pc::cluster_count(pc::dbscan(pts, {0.1, 3})), 0);
}

TEST(Dbscan, EmptyInput) {
  EXPECT_TRUE(pc::dbscan({}, {1.0, 3}).empty());
}
