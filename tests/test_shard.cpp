// Tests for the distributed sweep subsystem: the shard planner's
// exactly-once coverage, bit-identical shard/merge recombination, the JSON
// codecs for the harness result types, and the persistent (versioned,
// size-bounded) ScoreCache.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/shard.hpp"
#include "support/cachestore.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace pe = pareval::eval;
namespace ps = pareval::support;
using pareval::llm::Pair;

namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

}  // namespace

TEST(ShardPlan, CoversEveryUnitExactlyOnceForArbitraryK) {
  const std::size_t cells = 7;
  const int samples = 5;
  for (const int k : {1, 2, 3, 4, 7, 33, 64}) {
    std::set<std::pair<int, int>> seen;
    for (int shard = 0; shard < k; ++shard) {
      const pe::ShardPlan plan = pe::plan_shard(cells, samples, shard, k);
      EXPECT_EQ(plan.shard_index, shard);
      for (const auto& unit : plan.units) {
        EXPECT_TRUE(seen.insert(unit).second)
            << "unit covered twice with K=" << k;
        EXPECT_GE(unit.first, 0);
        EXPECT_LT(unit.first, static_cast<int>(cells));
        EXPECT_GE(unit.second, 0);
        EXPECT_LT(unit.second, samples);
      }
    }
    EXPECT_EQ(seen.size(), cells * samples) << "K=" << k;
  }
}

TEST(ShardPlan, InterleavesUnitsAcrossShards) {
  // Consecutive global units land on different shards (load balance).
  const pe::ShardPlan plan = pe::plan_shard(3, 4, 1, 4);
  ASSERT_EQ(plan.units.size(), 3u);
  EXPECT_EQ(plan.units[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(plan.units[1], (std::pair<int, int>{1, 1}));
  EXPECT_EQ(plan.units[2], (std::pair<int, int>{2, 1}));
}

TEST(ShardPlan, RejectsInvalidArguments) {
  EXPECT_THROW(pe::plan_shard(3, 4, -1, 4), std::invalid_argument);
  EXPECT_THROW(pe::plan_shard(3, 4, 4, 4), std::invalid_argument);
  EXPECT_THROW(pe::plan_shard(3, 4, 0, 0), std::invalid_argument);
  EXPECT_THROW(pe::plan_shard(3, 0, 0, 1), std::invalid_argument);
}

TEST(ShardMerge, FourShardsBitIdenticalToSingleProcessSweep) {
  const Pair& pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig config;
  config.samples_per_task = 2;

  constexpr int kShards = 4;
  std::vector<pe::ShardResult> shards;
  for (int i = 0; i < kShards; ++i) {
    shards.push_back(pe::run_shard(pair, i, kShards, config));
  }
  const auto merged = pe::merge_shards(pair, shards);
  const auto reference = pe::run_pair_sweep(pair, config);
  EXPECT_EQ(merged, reference);
}

TEST(ShardMerge, SingleShardEqualsSweepAndSurvivesJsonRoundTrip) {
  const Pair& pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig config;
  config.samples_per_task = 2;

  const pe::ShardResult shard = pe::run_shard(pair, 0, 1, config);
  // Through the on-disk format, as the CI fan-in consumes it.
  std::vector<pe::ShardResult> parsed;
  std::string error;
  ASSERT_TRUE(pe::parse_shard_file(pe::shard_file_text({shard}), &parsed,
                                   &error))
      << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], shard);

  const auto merged = pe::merge_shards(pair, parsed);
  EXPECT_EQ(merged, pe::run_pair_sweep(pair, config));
}

TEST(ShardMerge, RejectsMissingAndDuplicateUnits) {
  const Pair& pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig config;
  config.samples_per_task = 2;

  std::vector<pe::ShardResult> shards;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(pe::run_shard(pair, i, 2, config));
  }
  // Missing: drop one shard entirely.
  EXPECT_THROW(pe::merge_shards(pair, {shards[0]}), std::runtime_error);
  // Duplicate: the same shard twice.
  EXPECT_THROW(pe::merge_shards(pair, {shards[0], shards[1], shards[1]}),
               std::runtime_error);
  // Configuration mismatch: different seed (a different spec hash).
  auto reseeded = shards;
  reseeded[1].spec.seed ^= 1;
  EXPECT_THROW(pe::merge_shards(pair, reseeded), std::runtime_error);
}

TEST(ShardMerge, RejectsMixedEngineShards) {
  // Engines are bit-identical by contract, so a mixed set is not a score
  // problem — it means the worker fleet was misconfigured, and the merge
  // must refuse rather than paper over it.
  const Pair& pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig interp_config;
  interp_config.samples_per_task = 2;
  pe::HarnessConfig vm_config = interp_config;
  vm_config.engine = pareval::minic::EngineKind::Vm;

  const auto interp_shard = pe::run_shard(pair, 0, 2, interp_config);
  const auto vm_shard = pe::run_shard(pair, 1, 2, vm_config);
  EXPECT_EQ(interp_shard.engine, pareval::minic::EngineKind::Interp);
  EXPECT_EQ(vm_shard.engine, pareval::minic::EngineKind::Vm);
  EXPECT_THROW(pe::merge_shards(pair, {interp_shard, vm_shard}),
               std::runtime_error);

  // A uniform VM fleet merges fine — and bit-identically to interp.
  const auto vm_other = pe::run_shard(pair, 0, 2, vm_config);
  const auto vm_merged = pe::merge_shards(pair, {vm_other, vm_shard});
  const auto interp_other = pe::run_shard(pair, 1, 2, interp_config);
  const auto interp_merged =
      pe::merge_shards(pair, {interp_shard, interp_other});
  EXPECT_EQ(vm_merged, interp_merged);
}

TEST(ShardJson, StagedScoreRoundTrip) {
  pe::StagedScore s;
  s.built = true;
  s.passed = false;
  s.stages.push_back(
      {pe::Stage::Build, pe::StageVerdict::Pass, -1, "",
       "line1\n\"quoted\"\ttab\x01 control\nutf8: \xc3\xa9\n"});
  s.stages.push_back({pe::Stage::Execute, pe::StageVerdict::Fail, 1,
                      pe::kDetailRunError, "runtime error\n"});
  pe::StagedScore back;
  ASSERT_TRUE(pe::from_json(pe::to_json(s), &back));
  EXPECT_EQ(back, s);
}

TEST(ShardJson, SampleOutcomeRoundTrip) {
  pe::SampleOutcome o;
  o.built_overall = true;
  o.passed_overall = false;
  o.built_codeonly = true;
  o.passed_codeonly = true;
  o.tokens = 123456789;
  o.stages.push_back({pe::Stage::Build, pe::StageVerdict::Pass, -1, "",
                      "g++ -O2 -c main.cpp\nbuild succeeded\n"});
  o.stages.push_back({pe::Stage::Execute, pe::StageVerdict::Fail, 0,
                      pe::kDetailRunError,
                      "error: undeclared identifier 'blockIdx'\n"});
  o.defects = {"cuda_builtin", "makefile_flag"};
  pe::SampleOutcome back;
  ASSERT_TRUE(pe::from_json(pe::to_json(o), &back));
  EXPECT_EQ(back, o);
  EXPECT_EQ(back.failure_log(),
            "g++ -O2 -c main.cpp\nbuild succeeded\n"
            "error: undeclared identifier 'blockIdx'\n");
}

TEST(ShardJson, StageOutcomeRoundTripAndCompactFields) {
  // A stripped-log outcome omits the value-dependent fields but round
  // trips to an equal struct.
  pe::StageOutcome s;
  s.stage = pe::Stage::Validate;
  s.verdict = pe::StageVerdict::Fail;
  s.test_case = 2;
  s.detail = pe::kDetailNoDeviceLaunch;
  const auto j = pe::to_json(s);
  EXPECT_EQ(j.dump().find("\"log\""), std::string::npos);
  pe::StageOutcome back;
  ASSERT_TRUE(pe::from_json(j, &back));
  EXPECT_EQ(back, s);

  // Unknown stage/verdict keys are rejected, not defaulted.
  auto bad = pe::to_json(s);
  bad.set("stage", "link");
  EXPECT_FALSE(pe::from_json(bad, &back));
}

TEST(ShardJson, TaskResultRoundTripThroughText) {
  // A real task (with real failure logs) through dump + parse.
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  pe::HarnessConfig config;
  config.samples_per_task = 4;
  const auto task = pe::run_task(*app, pareval::llm::Technique::NonAgentic,
                                 pareval::llm::all_profiles()[0],
                                 pareval::llm::all_pairs()[0], config);
  const std::string text = pe::to_json(task).dump();
  const auto parsed = ps::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  pe::TaskResult back;
  ASSERT_TRUE(pe::from_json(*parsed, &back));
  EXPECT_EQ(back, task);
}

TEST(ShardJson, AbortedTaskResultRoundTrip) {
  pe::TaskResult t;
  t.llm = "o4-mini";
  t.technique = pareval::llm::Technique::TopDown;
  t.pair = pareval::llm::all_pairs()[1];
  t.app = "llm.c";
  t.ran = false;
  t.abort_reason = "context window exceeded";
  pe::TaskResult back;
  ASSERT_TRUE(pe::from_json(pe::to_json(t), &back));
  EXPECT_EQ(back, t);
}

TEST(ShardJson, RejectsMalformedInput) {
  pe::TaskResult t;
  EXPECT_FALSE(pe::from_json(ps::Json("not an object"), &t));
  auto j = pe::to_json(pe::TaskResult{});
  j.set("technique", "No such technique");
  EXPECT_FALSE(pe::from_json(j, &t));

  std::vector<pe::ShardResult> shards;
  std::string error;
  EXPECT_FALSE(pe::parse_shard_file("{]", &shards, &error));
  EXPECT_FALSE(pe::parse_shard_file("{\"format\":\"other\"}", &shards,
                                    &error));
}

TEST(ScoreCachePersist, SaveLoadRoundTripServesHits) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  const auto& repo = app->repos.at(pareval::apps::Model::Cuda);

  pe::ScoreCache cache;
  const auto first = cache.score(*app, repo, pareval::apps::Model::Cuda);
  EXPECT_EQ(cache.misses(), 1u);
  const std::string path = temp_path("score_cache_roundtrip.json");
  ASSERT_TRUE(cache.save(path));

  pe::ScoreCache reloaded;
  ASSERT_TRUE(reloaded.load(path));
  EXPECT_EQ(reloaded.size(), cache.size());
  const auto again = reloaded.score(*app, repo, pareval::apps::Model::Cuda);
  EXPECT_EQ(reloaded.hits(), 1u);   // served from the loaded file...
  EXPECT_EQ(reloaded.misses(), 0u); // ...without re-scoring
  EXPECT_EQ(again, first);
  std::remove(path.c_str());
}

TEST(ScoreCachePersist, VersionMismatchDiscardsStaleFile) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  const auto& repo = app->repos.at(pareval::apps::Model::Cuda);

  pe::ScoreCache cache;
  cache.score(*app, repo, pareval::apps::Model::Cuda);
  const std::string path = temp_path("score_cache_stale.json");
  ASSERT_TRUE(cache.save(path));

  // Forge a file written by a "different" scoring pipeline.
  std::string text = read_file(path);
  const std::string want = ps::u64_to_hex(pe::scoring_pipeline_hash());
  ASSERT_NE(text.find(want), std::string::npos);
  text = ps::replace_all(text, want, "00000000deadbeef");
  write_file(path, text);

  pe::ScoreCache stale;
  EXPECT_FALSE(stale.load(path));
  EXPECT_EQ(stale.size(), 0u);

  // And a file that is not JSON at all.
  write_file(path, "not json");
  EXPECT_FALSE(stale.load(path));
  EXPECT_EQ(stale.size(), 0u);
  std::remove(path.c_str());
}

TEST(ScoreCachePersist, LoadOfMissingFileFails) {
  pe::ScoreCache cache;
  EXPECT_FALSE(cache.load(temp_path("score_cache_nonexistent.json")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScoreCachePersist, JournalStoreRoundTripServesHits) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  const auto& repo = app->repos.at(pareval::apps::Model::Cuda);

  const std::string dir = temp_path("score_cache_store");
  std::filesystem::remove_all(dir);
  pareval::cache::Store store(dir);
  ASSERT_TRUE(store.open());

  pe::ScoreCache cache;
  EXPECT_FALSE(cache.attach(store));  // nothing journaled yet
  const auto first = cache.score(*app, repo, pareval::apps::Model::Cuda);
  EXPECT_EQ(cache.flush(), 1u);
  EXPECT_EQ(cache.flush(), 0u);  // idempotent: already published

  // A fresh process (separate Store instance) replays the journal and
  // serves the score without re-scoring — also across a compaction.
  pareval::cache::Store reader(dir);
  pe::ScoreCache reloaded;
  EXPECT_TRUE(reloaded.attach(reader));
  EXPECT_EQ(reloaded.size(), 1u);
  const auto again = reloaded.score(*app, repo, pareval::apps::Model::Cuda);
  EXPECT_EQ(reloaded.hits(), 1u);
  EXPECT_EQ(reloaded.misses(), 0u);
  EXPECT_EQ(again, first);

  ASSERT_TRUE(reader.compact(pe::ScoreCache::kStream,
                             pe::scoring_pipeline_hash()));
  pe::ScoreCache compacted;
  EXPECT_TRUE(compacted.attach(reader));
  EXPECT_EQ(compacted.size(), 1u);

  // A different pipeline version cold-starts, like a stale file.
  pe::ScoreCache stale;
  EXPECT_FALSE(stale.attach(reader, /*version=*/0xdeadbeef));
  EXPECT_EQ(stale.size(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ScoreCachePersist, ImportStoreForwardsRecordsOnFlush) {
  // The fan-in primitive: two workers flushed into separate journal
  // dirs; the merge attaches a shared target, imports both, and flushes
  // — the target then warm-starts a fresh cache with both scores.
  const auto* nano = pareval::apps::find_app("nanoXOR");
  const auto* micro = pareval::apps::find_app("microXOR");
  ASSERT_NE(nano, nullptr);
  ASSERT_NE(micro, nullptr);

  const std::string dir_a = temp_path("score_store_worker_a");
  const std::string dir_b = temp_path("score_store_worker_b");
  const std::string dir_t = temp_path("score_store_target");
  for (const auto& d : {dir_a, dir_b, dir_t}) {
    std::filesystem::remove_all(d);
  }

  {
    pareval::cache::Store store_a(dir_a);
    ASSERT_TRUE(store_a.open());
    pe::ScoreCache worker_a;
    worker_a.attach(store_a);
    worker_a.score(*nano, nano->repos.at(pareval::apps::Model::Cuda),
                   pareval::apps::Model::Cuda);
    EXPECT_EQ(worker_a.flush(), 1u);

    pareval::cache::Store store_b(dir_b);
    ASSERT_TRUE(store_b.open());
    pe::ScoreCache worker_b;
    worker_b.attach(store_b);
    worker_b.score(*micro, micro->repos.at(pareval::apps::Model::Cuda),
                   pareval::apps::Model::Cuda);
    EXPECT_EQ(worker_b.flush(), 1u);
  }

  {
    pareval::cache::Store target(dir_t);
    ASSERT_TRUE(target.open());
    pe::ScoreCache fold;
    fold.attach(target);
    pareval::cache::Store source_a(dir_a);
    pareval::cache::Store source_b(dir_b);
    EXPECT_TRUE(fold.import_store(source_a));
    EXPECT_TRUE(fold.import_store(source_b));
    EXPECT_EQ(fold.flush(), 2u);  // imported records forward to target
    EXPECT_EQ(fold.flush(), 0u);
  }

  pareval::cache::Store target(dir_t);
  pe::ScoreCache warm;
  EXPECT_TRUE(warm.attach(target));
  EXPECT_EQ(warm.size(), 2u);
  warm.score(*nano, nano->repos.at(pareval::apps::Model::Cuda),
             pareval::apps::Model::Cuda);
  warm.score(*micro, micro->repos.at(pareval::apps::Model::Cuda),
             pareval::apps::Model::Cuda);
  EXPECT_EQ(warm.hits(), 2u);
  EXPECT_EQ(warm.misses(), 0u);
  for (const auto& d : {dir_a, dir_b, dir_t}) {
    std::filesystem::remove_all(d);
  }
}

TEST(ScoreCachePersist, CapacityBoundsEntryCount) {
  // Build a valid cache file with many synthetic entries, then load it
  // into a capacity-bounded cache: eviction must keep size <= capacity.
  ps::Json root = ps::Json::object();
  root.set("format", "pareval-score-cache-v2");
  root.set("pipeline", ps::u64_to_hex(pe::scoring_pipeline_hash()));
  ps::Json entries = ps::Json::array();
  for (int i = 0; i < 200; ++i) {
    pe::StagedScore s;
    s.built = true;
    s.passed = i % 2 == 0;
    s.stages.push_back({pe::Stage::Build, pe::StageVerdict::Pass, -1, "",
                        "synthetic"});
    ps::Json e = pe::to_json(s);
    e.set("key", ps::u64_to_hex(0x1000ull + static_cast<unsigned>(i)));
    entries.push_back(std::move(e));
  }
  root.set("entries", std::move(entries));
  const std::string path = temp_path("score_cache_bounded.json");
  write_file(path, root.dump());

  pe::ScoreCache cache;
  cache.set_capacity(32);
  ASSERT_TRUE(cache.load(path));
  EXPECT_LE(cache.size(), 32u);
  EXPECT_GT(cache.size(), 0u);

  // Shrinking an already-populated cache evicts immediately.
  cache.set_capacity(16);
  EXPECT_LE(cache.size(), 16u);
  std::remove(path.c_str());
}

TEST(ScoreCachePersist, PreStagedFormatIsRejected) {
  // A v1 file (flat logs, no staged outcomes) must cold-start rather than
  // load entries with missing provenance — warm-vs-cold bit-identity
  // depends on cached entries carrying exactly what a fresh score would.
  ps::Json root = ps::Json::object();
  root.set("format", "pareval-score-cache");
  root.set("pipeline", ps::u64_to_hex(pe::scoring_pipeline_hash()));
  ps::Json entries = ps::Json::array();
  ps::Json e = ps::Json::object();
  e.set("key", ps::u64_to_hex(0x1234));
  e.set("built", true);
  e.set("passed", true);
  e.set("log", "v1 flat log");
  entries.push_back(std::move(e));
  root.set("entries", std::move(entries));
  const std::string path = temp_path("score_cache_v1.json");
  write_file(path, root.dump());

  pe::ScoreCache cache;
  EXPECT_FALSE(cache.load(path));
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

TEST(ScoreCachePersist, SaveDeltaWritesOnlyFreshEntries) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);

  // A "published" cache with one entry...
  pe::ScoreCache base;
  base.score(*app, app->repos.at(pareval::apps::Model::Cuda),
             pareval::apps::Model::Cuda);
  const std::string published = temp_path("score_cache_published.json");
  ASSERT_TRUE(base.save(published));

  // ...warm-starts a worker, which then scores one *new* artifact.
  pe::ScoreCache worker;
  ASSERT_TRUE(worker.load(published));
  EXPECT_EQ(worker.size(), 1u);
  worker.score(*app, app->repos.at(pareval::apps::Model::OmpThreads),
               pareval::apps::Model::OmpThreads);
  EXPECT_EQ(worker.size(), 2u);

  // The delta holds only the entry added by this worker's run.
  const std::string delta = temp_path("score_cache_delta.json");
  ASSERT_TRUE(worker.save_delta(delta));
  pe::ScoreCache delta_only;
  ASSERT_TRUE(delta_only.load(delta));
  EXPECT_EQ(delta_only.size(), 1u);

  // Folding the delta into the published cache (the sweep_merge
  // --merge-cache path) yields the union; a delta file is itself a valid
  // cache file, so the fold is just load + load + save.
  pe::ScoreCache fold;
  ASSERT_TRUE(fold.load(published));
  ASSERT_TRUE(fold.load(delta));
  EXPECT_EQ(fold.size(), 2u);
  std::remove(published.c_str());
  std::remove(delta.c_str());
}

TEST(ScoreCachePersist, SuiteAwareVersionInvalidatesAcrossSuites) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  pe::ScoreCache cache;
  cache.score(*app, app->repos.at(pareval::apps::Model::Cuda),
              pareval::apps::Model::Cuda);

  // Persist under a custom suite's pipeline hash: a cache saved for one
  // suite must not warm-start a sweep of a different one.
  pe::Suite custom = pe::Suite::paper();
  pareval::apps::AppSpec tiny;
  tiny.name = "tinyApp";
  custom.add_app(std::move(tiny));
  const std::uint64_t custom_version = pe::scoring_pipeline_hash(custom);
  ASSERT_NE(custom_version, pe::scoring_pipeline_hash());

  const std::string path = temp_path("score_cache_custom_suite.json");
  ASSERT_TRUE(cache.save(path, custom_version));
  pe::ScoreCache paper_reader;
  EXPECT_FALSE(paper_reader.load(path));  // default = paper hash: stale
  pe::ScoreCache custom_reader;
  EXPECT_TRUE(custom_reader.load(path, custom_version));
  EXPECT_EQ(custom_reader.size(), 1u);
  std::remove(path.c_str());
}

TEST(ShardFile, RejectsWrongFormatVersion) {
  pe::HarnessConfig config;
  config.samples_per_task = 1;
  const auto shard = pe::run_shard(pareval::llm::all_pairs()[0], 0, 1,
                                   config);
  std::string text = pe::shard_file_text({shard});
  ASSERT_NE(text.find("\"format_version\":3"), std::string::npos);
  text = ps::replace_all(text, "\"format_version\":3",
                         "\"format_version\":2");
  std::vector<pe::ShardResult> parsed;
  std::string error;
  EXPECT_FALSE(pe::parse_shard_file(text, &parsed, &error));
  EXPECT_NE(error.find("format version"), std::string::npos);
}

TEST(ShardFile, KeepLogsOffStripsStageLogsButKeepsProvenance) {
  // keep_logs=false must round-trip through a shard file and shrink it:
  // the structured stage verdicts/details survive, the log slices do not.
  const Pair pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig with_logs;
  with_logs.samples_per_task = 6;
  pe::HarnessConfig without_logs = with_logs;
  without_logs.keep_logs = false;

  const auto full = pe::run_shard(pair, 0, 1, with_logs);
  const auto lean = pe::run_shard(pair, 0, 1, without_logs);

  // Same verdicts, same provenance shape, no log bytes.
  ASSERT_EQ(full.records.size(), lean.records.size());
  bool saw_failure = false;
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    const auto& f = full.records[i].run.outcome;
    const auto& l = lean.records[i].run.outcome;
    EXPECT_EQ(f.built_overall, l.built_overall);
    EXPECT_EQ(f.passed_overall, l.passed_overall);
    ASSERT_EQ(f.stages.size(), l.stages.size());
    for (std::size_t s = 0; s < f.stages.size(); ++s) {
      EXPECT_EQ(f.stages[s].stage, l.stages[s].stage);
      EXPECT_EQ(f.stages[s].verdict, l.stages[s].verdict);
      EXPECT_EQ(f.stages[s].detail, l.stages[s].detail);
      EXPECT_TRUE(l.stages[s].log.empty());
    }
    if (!f.stages.empty()) saw_failure = true;
    EXPECT_EQ(l.failure_log(), "");
  }
  ASSERT_TRUE(saw_failure) << "corpus produced no failures to strip";

  // Round trip preserves the lean shard exactly, and the file is smaller.
  const std::string full_text = pe::shard_file_text({full});
  const std::string lean_text = pe::shard_file_text({lean});
  EXPECT_LT(lean_text.size(), full_text.size());
  std::vector<pe::ShardResult> back;
  std::string error;
  ASSERT_TRUE(pe::parse_shard_file(lean_text, &back, &error)) << error;
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], lean);
}

TEST(ShardFile, MaxLogBytesBoundsKeptSlices) {
  const Pair pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig bounded;
  bounded.samples_per_task = 6;
  bounded.max_log_bytes = 64;
  const auto shard = pe::run_shard(pair, 0, 1, bounded);
  bool saw_log = false;
  for (const auto& rec : shard.records) {
    for (const auto& s : rec.run.outcome.stages) {
      EXPECT_LE(s.log.size(), 64u);
      if (!s.log.empty()) saw_log = true;
    }
  }
  EXPECT_TRUE(saw_log);
  // Bounded outcomes round-trip bit-identically too.
  std::vector<pe::ShardResult> back;
  std::string error;
  ASSERT_TRUE(pe::parse_shard_file(pe::shard_file_text({shard}), &back,
                                   &error))
      << error;
  EXPECT_EQ(back[0], shard);
}
