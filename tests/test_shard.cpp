// Tests for the distributed sweep subsystem: the shard planner's
// exactly-once coverage, bit-identical shard/merge recombination, the JSON
// codecs for the harness result types, and the persistent (versioned,
// size-bounded) ScoreCache.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/shard.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace pe = pareval::eval;
namespace ps = pareval::support;
using pareval::llm::Pair;

namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

}  // namespace

TEST(ShardPlan, CoversEveryUnitExactlyOnceForArbitraryK) {
  const std::size_t cells = 7;
  const int samples = 5;
  for (const int k : {1, 2, 3, 4, 7, 33, 64}) {
    std::set<std::pair<int, int>> seen;
    for (int shard = 0; shard < k; ++shard) {
      const pe::ShardPlan plan = pe::plan_shard(cells, samples, shard, k);
      EXPECT_EQ(plan.shard_index, shard);
      for (const auto& unit : plan.units) {
        EXPECT_TRUE(seen.insert(unit).second)
            << "unit covered twice with K=" << k;
        EXPECT_GE(unit.first, 0);
        EXPECT_LT(unit.first, static_cast<int>(cells));
        EXPECT_GE(unit.second, 0);
        EXPECT_LT(unit.second, samples);
      }
    }
    EXPECT_EQ(seen.size(), cells * samples) << "K=" << k;
  }
}

TEST(ShardPlan, InterleavesUnitsAcrossShards) {
  // Consecutive global units land on different shards (load balance).
  const pe::ShardPlan plan = pe::plan_shard(3, 4, 1, 4);
  ASSERT_EQ(plan.units.size(), 3u);
  EXPECT_EQ(plan.units[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(plan.units[1], (std::pair<int, int>{1, 1}));
  EXPECT_EQ(plan.units[2], (std::pair<int, int>{2, 1}));
}

TEST(ShardPlan, RejectsInvalidArguments) {
  EXPECT_THROW(pe::plan_shard(3, 4, -1, 4), std::invalid_argument);
  EXPECT_THROW(pe::plan_shard(3, 4, 4, 4), std::invalid_argument);
  EXPECT_THROW(pe::plan_shard(3, 4, 0, 0), std::invalid_argument);
  EXPECT_THROW(pe::plan_shard(3, 0, 0, 1), std::invalid_argument);
}

TEST(ShardMerge, FourShardsBitIdenticalToSingleProcessSweep) {
  const Pair& pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig config;
  config.samples_per_task = 2;

  constexpr int kShards = 4;
  std::vector<pe::ShardResult> shards;
  for (int i = 0; i < kShards; ++i) {
    shards.push_back(pe::run_shard(pair, i, kShards, config));
  }
  const auto merged = pe::merge_shards(pair, shards);
  const auto reference = pe::run_pair_sweep(pair, config);
  EXPECT_EQ(merged, reference);
}

TEST(ShardMerge, SingleShardEqualsSweepAndSurvivesJsonRoundTrip) {
  const Pair& pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig config;
  config.samples_per_task = 2;

  const pe::ShardResult shard = pe::run_shard(pair, 0, 1, config);
  // Through the on-disk format, as the CI fan-in consumes it.
  std::vector<pe::ShardResult> parsed;
  std::string error;
  ASSERT_TRUE(pe::parse_shard_file(pe::shard_file_text({shard}), &parsed,
                                   &error))
      << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], shard);

  const auto merged = pe::merge_shards(pair, parsed);
  EXPECT_EQ(merged, pe::run_pair_sweep(pair, config));
}

TEST(ShardMerge, RejectsMissingAndDuplicateUnits) {
  const Pair& pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig config;
  config.samples_per_task = 2;

  std::vector<pe::ShardResult> shards;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(pe::run_shard(pair, i, 2, config));
  }
  // Missing: drop one shard entirely.
  EXPECT_THROW(pe::merge_shards(pair, {shards[0]}), std::runtime_error);
  // Duplicate: the same shard twice.
  EXPECT_THROW(pe::merge_shards(pair, {shards[0], shards[1], shards[1]}),
               std::runtime_error);
  // Configuration mismatch: different seed (a different spec hash).
  auto reseeded = shards;
  reseeded[1].spec.seed ^= 1;
  EXPECT_THROW(pe::merge_shards(pair, reseeded), std::runtime_error);
}

TEST(ShardJson, ScoreResultRoundTrip) {
  pe::ScoreResult r;
  r.built = true;
  r.passed = false;
  r.log = "line1\n\"quoted\"\ttab\x01 control\nutf8: \xc3\xa9\n";
  pe::ScoreResult back;
  ASSERT_TRUE(pe::from_json(pe::to_json(r), &back));
  EXPECT_EQ(back, r);
}

TEST(ShardJson, SampleOutcomeRoundTrip) {
  pe::SampleOutcome o;
  o.built_overall = true;
  o.passed_overall = false;
  o.built_codeonly = true;
  o.passed_codeonly = true;
  o.tokens = 123456789;
  o.failure_log = "error: undeclared identifier 'blockIdx'\n";
  o.defects = {"cuda_builtin", "makefile_flag"};
  pe::SampleOutcome back;
  ASSERT_TRUE(pe::from_json(pe::to_json(o), &back));
  EXPECT_EQ(back, o);
}

TEST(ShardJson, TaskResultRoundTripThroughText) {
  // A real task (with real failure logs) through dump + parse.
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  pe::HarnessConfig config;
  config.samples_per_task = 4;
  const auto task = pe::run_task(*app, pareval::llm::Technique::NonAgentic,
                                 pareval::llm::all_profiles()[0],
                                 pareval::llm::all_pairs()[0], config);
  const std::string text = pe::to_json(task).dump();
  const auto parsed = ps::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  pe::TaskResult back;
  ASSERT_TRUE(pe::from_json(*parsed, &back));
  EXPECT_EQ(back, task);
}

TEST(ShardJson, AbortedTaskResultRoundTrip) {
  pe::TaskResult t;
  t.llm = "o4-mini";
  t.technique = pareval::llm::Technique::TopDown;
  t.pair = pareval::llm::all_pairs()[1];
  t.app = "llm.c";
  t.ran = false;
  t.abort_reason = "context window exceeded";
  pe::TaskResult back;
  ASSERT_TRUE(pe::from_json(pe::to_json(t), &back));
  EXPECT_EQ(back, t);
}

TEST(ShardJson, RejectsMalformedInput) {
  pe::TaskResult t;
  EXPECT_FALSE(pe::from_json(ps::Json("not an object"), &t));
  auto j = pe::to_json(pe::TaskResult{});
  j.set("technique", "No such technique");
  EXPECT_FALSE(pe::from_json(j, &t));

  std::vector<pe::ShardResult> shards;
  std::string error;
  EXPECT_FALSE(pe::parse_shard_file("{]", &shards, &error));
  EXPECT_FALSE(pe::parse_shard_file("{\"format\":\"other\"}", &shards,
                                    &error));
}

TEST(ScoreCachePersist, SaveLoadRoundTripServesHits) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  const auto& repo = app->repos.at(pareval::apps::Model::Cuda);

  pe::ScoreCache cache;
  const auto first = cache.score(*app, repo, pareval::apps::Model::Cuda);
  EXPECT_EQ(cache.misses(), 1u);
  const std::string path = temp_path("score_cache_roundtrip.json");
  ASSERT_TRUE(cache.save(path));

  pe::ScoreCache reloaded;
  ASSERT_TRUE(reloaded.load(path));
  EXPECT_EQ(reloaded.size(), cache.size());
  const auto again = reloaded.score(*app, repo, pareval::apps::Model::Cuda);
  EXPECT_EQ(reloaded.hits(), 1u);   // served from the loaded file...
  EXPECT_EQ(reloaded.misses(), 0u); // ...without re-scoring
  EXPECT_EQ(again, first);
  std::remove(path.c_str());
}

TEST(ScoreCachePersist, VersionMismatchDiscardsStaleFile) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  const auto& repo = app->repos.at(pareval::apps::Model::Cuda);

  pe::ScoreCache cache;
  cache.score(*app, repo, pareval::apps::Model::Cuda);
  const std::string path = temp_path("score_cache_stale.json");
  ASSERT_TRUE(cache.save(path));

  // Forge a file written by a "different" scoring pipeline.
  std::string text = read_file(path);
  const std::string want = ps::u64_to_hex(pe::scoring_pipeline_hash());
  ASSERT_NE(text.find(want), std::string::npos);
  text = ps::replace_all(text, want, "00000000deadbeef");
  write_file(path, text);

  pe::ScoreCache stale;
  EXPECT_FALSE(stale.load(path));
  EXPECT_EQ(stale.size(), 0u);

  // And a file that is not JSON at all.
  write_file(path, "not json");
  EXPECT_FALSE(stale.load(path));
  EXPECT_EQ(stale.size(), 0u);
  std::remove(path.c_str());
}

TEST(ScoreCachePersist, LoadOfMissingFileFails) {
  pe::ScoreCache cache;
  EXPECT_FALSE(cache.load(temp_path("score_cache_nonexistent.json")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScoreCachePersist, CapacityBoundsEntryCount) {
  // Build a valid cache file with many synthetic entries, then load it
  // into a capacity-bounded cache: eviction must keep size <= capacity.
  ps::Json root = ps::Json::object();
  root.set("format", "pareval-score-cache");
  root.set("pipeline", ps::u64_to_hex(pe::scoring_pipeline_hash()));
  ps::Json entries = ps::Json::array();
  for (int i = 0; i < 200; ++i) {
    ps::Json e = ps::Json::object();
    e.set("key", ps::u64_to_hex(0x1000ull + static_cast<unsigned>(i)));
    e.set("built", true);
    e.set("passed", i % 2 == 0);
    e.set("log", "synthetic");
    entries.push_back(std::move(e));
  }
  root.set("entries", std::move(entries));
  const std::string path = temp_path("score_cache_bounded.json");
  write_file(path, root.dump());

  pe::ScoreCache cache;
  cache.set_capacity(32);
  ASSERT_TRUE(cache.load(path));
  EXPECT_LE(cache.size(), 32u);
  EXPECT_GT(cache.size(), 0u);

  // Shrinking an already-populated cache evicts immediately.
  cache.set_capacity(16);
  EXPECT_LE(cache.size(), 16u);
  std::remove(path.c_str());
}
