// Application-suite tests: every shipped implementation of every app must
// build under the simulated toolchains and reproduce its native golden
// output on every test case. This is the "developer-provided validation"
// of the paper (§5), and it also pins the Table 1 structural properties.

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "buildsim/builder.hpp"
#include "codeanal/metrics.hpp"

namespace pa = pareval::apps;
namespace bs = pareval::buildsim;
using pareval::execsim::run_executable;

namespace {

struct AppModelCase {
  const pa::AppSpec* app;
  pa::Model model;
};

std::vector<AppModelCase> shipped_cases() {
  std::vector<AppModelCase> out;
  for (const pa::AppSpec* app : pa::all_apps()) {
    for (const pa::Model m : app->available) {
      out.push_back({app, m});
    }
  }
  return out;
}

std::string case_name(const testing::TestParamInfo<AppModelCase>& info) {
  std::string name = info.param.app->name + "_" +
                     pa::model_name(info.param.model);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

}  // namespace

class ShippedApp : public testing::TestWithParam<AppModelCase> {};

TEST_P(ShippedApp, BuildsWithItsBuildSystem) {
  const auto& [app, model] = GetParam();
  const auto result = bs::build_repo(app->repos.at(model));
  ASSERT_TRUE(result.ok) << result.log;
}

TEST_P(ShippedApp, MatchesGoldenOnAllTests) {
  const auto& [app, model] = GetParam();
  const auto result = bs::build_repo(app->repos.at(model));
  ASSERT_TRUE(result.ok) << result.log;
  for (const auto& tc : app->tests) {
    const auto run = run_executable(*result.exe, tc.args);
    ASSERT_TRUE(run.ok) << run.stderr_text;
    const std::string want = app->golden(tc);
    EXPECT_TRUE(pa::outputs_match(run.stdout_text, want, app->tolerance))
        << "args: " << (tc.args.empty() ? "<none>" : tc.args[0])
        << "\ngot:  " << run.stdout_text << "want: " << want;
  }
}

TEST_P(ShippedApp, GpuModelsLaunchKernels) {
  const auto& [app, model] = GetParam();
  if (model != pa::Model::Cuda) GTEST_SKIP();
  const auto result = bs::build_repo(app->repos.at(model));
  ASSERT_TRUE(result.ok) << result.log;
  const auto run = run_executable(*result.exe, app->tests[0].args);
  ASSERT_TRUE(run.ok) << run.stderr_text;
  EXPECT_GE(run.stats.device_kernel_launches, 1);
}

INSTANTIATE_TEST_SUITE_P(Suite, ShippedApp, testing::ValuesIn(shipped_cases()),
                         case_name);

// ----------------------------------------------------- Table 1 shape ----

TEST(AppSuite, SixAppsInTableOrder) {
  const auto& apps = pa::all_apps();
  ASSERT_EQ(apps.size(), 6u);
  EXPECT_EQ(apps[0]->name, "nanoXOR");
  EXPECT_EQ(apps[1]->name, "microXORh");
  EXPECT_EQ(apps[2]->name, "microXOR");
  EXPECT_EQ(apps[3]->name, "SimpleMOC-kernel");
  EXPECT_EQ(apps[4]->name, "XSBench");
  EXPECT_EQ(apps[5]->name, "llm.c");
}

TEST(AppSuite, FileCountsMatchTable1) {
  // Table 1 "# Files" (source + build files; README excluded).
  const std::map<std::string, int> expected = {
      {"nanoXOR", 2},  {"microXORh", 3},        {"microXOR", 4},
      {"SimpleMOC-kernel", 6}, {"XSBench", 9},  {"llm.c", 7}};
  for (const pa::AppSpec* app : pa::all_apps()) {
    // Structural file counts use the *translation source* repo: CUDA when
    // shipped, else the threads implementation.
    const pa::Model m = app->repos.count(pa::Model::Cuda) > 0
                            ? pa::Model::Cuda
                            : pa::Model::OmpThreads;
    const auto metrics = pareval::codeanal::repo_metrics(app->repos.at(m));
    EXPECT_EQ(metrics.files, expected.at(app->name)) << app->name;
  }
}

TEST(AppSuite, SlocOrderingMatchesTable1) {
  // Absolute SLoC differ from the paper (scaled-down reimplementations,
  // DESIGN.md §2); the ordering across apps must hold.
  std::vector<int> sloc;
  for (const pa::AppSpec* app : pa::all_apps()) {
    const pa::Model m = app->repos.count(pa::Model::Cuda) > 0
                            ? pa::Model::Cuda
                            : pa::Model::OmpThreads;
    sloc.push_back(pareval::codeanal::repo_metrics(app->repos.at(m)).sloc);
  }
  // nanoXOR <= microXORh <= microXOR < SimpleMOC-kernel < XSBench
  EXPECT_LE(sloc[0], sloc[1]);
  EXPECT_LE(sloc[1], sloc[2]);
  EXPECT_LT(sloc[2], sloc[3]);
  EXPECT_LT(sloc[3], sloc[4]);
}

TEST(AppSuite, OnlyXsbenchHasPublicPorts) {
  for (const pa::AppSpec* app : pa::all_apps()) {
    EXPECT_EQ(app->public_port_exists, app->name == "XSBench") << app->name;
  }
}

TEST(AppSuite, EveryAppHasGroundTruthBuildsForItsPorts) {
  for (const pa::AppSpec* app : pa::all_apps()) {
    for (const pa::Model m : app->ports) {
      EXPECT_EQ(app->ground_truth_builds.count(m), 1u)
          << app->name << " missing ground truth for " << pa::model_name(m);
    }
  }
}

TEST(AppSuite, FindAppByName) {
  EXPECT_NE(pa::find_app("XSBench"), nullptr);
  EXPECT_EQ(pa::find_app("NoSuchApp"), nullptr);
}

TEST(AppSuite, OutputsMatchTolerance) {
  EXPECT_TRUE(pa::outputs_match("loss 1.0000001", "loss 1.0", 1e-5));
  EXPECT_FALSE(pa::outputs_match("loss 1.01", "loss 1.0", 1e-5));
  EXPECT_FALSE(pa::outputs_match("loss 1.0", "loss 1.0 extra", 1e-5));
  EXPECT_FALSE(pa::outputs_match("lossy 1.0", "loss 1.0", 1e-5));
  EXPECT_TRUE(pa::outputs_match("checksum 42", "checksum 42", 0.0));
}
