// End-to-end MiniC tests: compile (preprocess/parse/sema/link) and run
// programs under each simulated execution model, including the paper's
// Listing 2-4 scenarios (correct CUDA kernel, correct OpenMP offload
// translation, and the broken translation that lost `target parallel for`).

#include <gtest/gtest.h>

#include "execsim/driver.hpp"

using pareval::execsim::Executable;
using pareval::execsim::compile_repo;
using pareval::execsim::run_executable;
using pareval::minic::Capabilities;
using pareval::minic::DiagCategory;
using pareval::minic::RunResult;
using pareval::vfs::Repo;

namespace {

Capabilities cuda_caps() {
  Capabilities c;
  c.cuda = true;
  c.curand = true;
  return c;
}
Capabilities omp_caps(bool offload = true) {
  Capabilities c;
  c.openmp = true;
  c.offload = offload;
  return c;
}
Capabilities kokkos_caps() {
  Capabilities c;
  c.kokkos = true;
  return c;
}

Executable compile_one(const std::string& src, Capabilities caps) {
  Repo repo;
  repo.write("main.cpp", src);
  return compile_repo(repo, {"main.cpp"}, caps);
}

RunResult run_one(const std::string& src, Capabilities caps,
                  std::vector<std::string> args = {}) {
  Executable exe = compile_one(src, caps);
  EXPECT_TRUE(exe.ok()) << exe.diags.render();
  return run_executable(exe, args);
}

bool has_category(const pareval::minic::DiagBag& bag, DiagCategory cat) {
  for (const auto& d : bag.all()) {
    if (d.category == cat &&
        d.severity == pareval::minic::Severity::Error) {
      return true;
    }
  }
  return false;
}

}  // namespace

// ------------------------------------------------------------- basics --

TEST(Interp, HelloWorld) {
  const RunResult r = run_one(R"(
#include <stdio.h>
int main() {
  printf("hello %d %s %.2f\n", 42, "world", 3.14159);
  return 0;
}
)",
                              Capabilities{});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.stdout_text, "hello 42 world 3.14\n");
}

TEST(Interp, ArithmeticAndControlFlow) {
  const RunResult r = run_one(R"(
#include <stdio.h>
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() {
  int sum = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 2 == 0) continue;
    sum += i;
  }
  printf("%d %d\n", sum, fib(10));
  return 0;
}
)",
                              Capabilities{});
  EXPECT_EQ(r.stdout_text, "25 55\n");
}

TEST(Interp, PointersMallocStructs) {
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
typedef struct {
  double energy;
  int id;
} Point;
int main() {
  Point* pts = (Point*) malloc(4 * sizeof(Point));
  for (int i = 0; i < 4; i++) {
    pts[i].energy = 1.5 * i;
    pts[i].id = i;
  }
  double total = 0.0;
  for (int i = 0; i < 4; i++) total += pts[i].energy;
  Point copy = pts[2];
  copy.energy = 99.0;      // value semantics: must not affect pts[2]
  printf("%.1f %.1f %d\n", total, pts[2].energy, copy.id);
  free(pts);
  return 0;
}
)",
                              Capabilities{});
  EXPECT_EQ(r.stdout_text, "9.0 3.0 2\n");
}

TEST(Interp, CommandLineArguments) {
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
int main(int argc, char** argv) {
  int n = 8;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "-n") == 0) { n = atoi(argv[i + 1]); i++; }
  }
  printf("n=%d\n", n);
  return 0;
}
)",
                              Capabilities{}, {"-n", "32"});
  EXPECT_EQ(r.stdout_text, "n=32\n");
}

TEST(Interp, DefinesAndHeaderGuards) {
  Repo repo;
  repo.write("config.h", R"(
#ifndef CONFIG_H
#define CONFIG_H
#define GRID 16
#endif
)");
  repo.write("main.cpp", R"(
#include <stdio.h>
#include "config.h"
#include "config.h"
int main() { printf("%d\n", GRID * 2); return 0; }
)");
  Executable exe = compile_repo(repo, {"main.cpp"}, Capabilities{});
  ASSERT_TRUE(exe.ok()) << exe.diags.render();
  EXPECT_EQ(run_executable(exe, {}).stdout_text, "32\n");
}

TEST(Interp, GlobalsAndArrays) {
  const RunResult r = run_one(R"(
#include <stdio.h>
int counter = 3;
double table[4] = {0.5, 1.5, 2.5, 3.5};
int main() {
  counter++;
  double s = 0;
  for (int i = 0; i < 4; i++) s += table[i];
  printf("%d %.1f\n", counter, s);
  return 0;
}
)",
                              Capabilities{});
  EXPECT_EQ(r.stdout_text, "4 8.0\n");
}

TEST(Interp, UninitializedHeapReadPoisonsNotCrashes) {
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  double* a = (double*) malloc(8 * sizeof(double));
  double x = a[3];
  printf("%d\n", x == 0.0 ? 1 : 0);
  return 0;
}
)",
                              Capabilities{});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.stdout_text, "0\n");  // garbage, not zero
  EXPECT_TRUE(r.stats.read_uninitialized);
}

TEST(Interp, UseAfterFreeTraps) {
  const RunResult r = run_one(R"(
#include <stdlib.h>
int main() {
  int* p = (int*) malloc(4 * sizeof(int));
  free(p);
  p[0] = 1;
  return 0;
}
)",
                              Capabilities{});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_category(r.diags, DiagCategory::RuntimeFault));
}

TEST(Interp, BufferOverflowTraps) {
  const RunResult r = run_one(R"(
#include <stdlib.h>
int main() {
  int* p = (int*) malloc(4 * sizeof(int));
  p[9] = 1;
  return 0;
}
)",
                              Capabilities{});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_category(r.diags, DiagCategory::RuntimeFault));
}

TEST(Interp, InfiniteLoopHitsFuel) {
  Repo repo;
  repo.write("main.cpp", "int main() { while (1) {} return 0; }");
  Executable exe = compile_repo(repo, {"main.cpp"}, Capabilities{});
  ASSERT_TRUE(exe.ok());
  pareval::minic::RunLimits limits;
  limits.max_steps = 10000;
  const RunResult r = run_executable(exe, {}, limits);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_category(r.diags, DiagCategory::RuntimeFault));
}

// ------------------------------------------------------------ sema -----

TEST(Sema, UndeclaredIdentifier) {
  Executable exe = compile_one("int main() { return missing_var; }",
                               Capabilities{});
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::UndeclaredIdentifier));
}

TEST(Sema, ArgCountMismatch) {
  Executable exe = compile_one(R"(
int add(int a, int b) { return a + b; }
int main() { return add(1); }
)",
                               Capabilities{});
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::ArgTypeMismatch));
}

TEST(Sema, ArgTypeMismatchPointerVsInt) {
  Executable exe = compile_one(R"(
double sum(double* data, int n) { return data[n - 1]; }
int main() { return (int) sum(5, 3); }
)",
                               Capabilities{});
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::ArgTypeMismatch));
}

TEST(Sema, SyntaxErrorMissingBrace) {
  Executable exe =
      compile_one("int main() { if (1) { return 0; return 1; }",
                  Capabilities{});
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::CodeSyntax));
}

TEST(Sema, MissingQuotedHeader) {
  Executable exe = compile_one("#include \"nothere.h\"\nint main() {}\n",
                               Capabilities{});
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::MissingHeader));
}

TEST(Sema, KokkosHeaderMissingWithoutPackage) {
  Executable exe = compile_one(
      "#include <Kokkos_Core.hpp>\nint main() { return 0; }\n",
      Capabilities{});  // no kokkos
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::MissingHeader));
}

TEST(Sema, CudaApiUndeclaredWithoutCuda) {
  Executable exe = compile_one(R"(
#include <stdlib.h>
int main() {
  double* d;
  cudaMalloc((void**)&d, 8);
  return 0;
}
)",
                               omp_caps());
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::UndeclaredIdentifier));
}

TEST(Sema, MissingStdioMakesPrintfUndeclared) {
  Executable exe =
      compile_one("int main() { printf(\"x\"); return 0; }", Capabilities{});
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::UndeclaredIdentifier));
}

TEST(Link, UndefinedReference) {
  Repo repo;
  repo.write("main.cpp", R"(
int compute(int x);
int main() { return compute(3); }
)");
  Executable exe = compile_repo(repo, {"main.cpp"}, Capabilities{});
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::LinkError));
}

TEST(Link, CrossFileCallWorks) {
  Repo repo;
  repo.write("kernel.h", "int compute(int x);\n");
  repo.write("kernel.cpp",
             "#include \"kernel.h\"\nint compute(int x) { return x * 3; }\n");
  repo.write("main.cpp", R"(
#include <stdio.h>
#include "kernel.h"
int main() { printf("%d\n", compute(7)); return 0; }
)");
  Executable exe =
      compile_repo(repo, {"main.cpp", "kernel.cpp"}, Capabilities{});
  ASSERT_TRUE(exe.ok()) << exe.diags.render();
  EXPECT_EQ(run_executable(exe, {}).stdout_text, "21\n");
}

TEST(Link, MultipleDefinition) {
  Repo repo;
  repo.write("a.cpp", "int f() { return 1; }\nint main() { return f(); }\n");
  repo.write("b.cpp", "int f() { return 2; }\n");
  Executable exe = compile_repo(repo, {"a.cpp", "b.cpp"}, Capabilities{});
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::LinkError));
}

TEST(Link, SharedHeaderFunctionIsNotACollision) {
  Repo repo;
  repo.write("util.h", "inline int twice(int x) { return 2 * x; }\n");
  repo.write("a.cpp",
             "#include \"util.h\"\nint user_a() { return twice(1); }\n");
  repo.write("main.cpp", R"(
#include "util.h"
int user_a();
int main() { return twice(2) + user_a() - 6; }
)");
  Executable exe = compile_repo(repo, {"main.cpp", "a.cpp"}, Capabilities{});
  ASSERT_TRUE(exe.ok()) << exe.diags.render();
  EXPECT_TRUE(run_executable(exe, {}).ok);  // exit code 0
}

// ------------------------------------------------------------- CUDA ----

namespace {

// The paper's Listing 2: the original nanoXOR CUDA kernel, plus a driver.
const char* kNanoXorCuda = R"(
#include <stdio.h>
#include <stdlib.h>

__global__ void cellsXOR(const int* input, int* output, size_t N) {
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < N && j < N) {
    int count = 0;
    if (i > 0 && input[(i - 1) * N + j] == 1) count++;
    if (i < N - 1 && input[(i + 1) * N + j] == 1) count++;
    if (j > 0 && input[i * N + (j - 1)] == 1) count++;
    if (j < N - 1 && input[i * N + (j + 1)] == 1) count++;
    output[i * N + j] = (count == 1) ? 1 : 0;
  }
}

int main() {
  size_t N = 8;
  int* input = (int*) malloc(N * N * sizeof(int));
  int* output = (int*) malloc(N * N * sizeof(int));
  for (size_t k = 0; k < N * N; k++) input[k] = (k * 7 + 3) % 5 == 0 ? 1 : 0;
  int* d_in;
  int* d_out;
  cudaMalloc((void**)&d_in, N * N * sizeof(int));
  cudaMalloc((void**)&d_out, N * N * sizeof(int));
  cudaMemcpy(d_in, input, N * N * sizeof(int), cudaMemcpyHostToDevice);
  dim3 block(4, 4);
  dim3 grid(2, 2);
  cellsXOR<<<grid, block>>>(d_in, d_out, N);
  cudaDeviceSynchronize();
  cudaMemcpy(output, d_out, N * N * sizeof(int), cudaMemcpyDeviceToHost);
  long sum = 0;
  for (size_t k = 0; k < N * N; k++) sum += output[k] * (long)(k + 1);
  printf("checksum %ld\n", sum);
  cudaFree(d_in);
  cudaFree(d_out);
  free(input);
  free(output);
  return 0;
}
)";

}  // namespace

TEST(Cuda, NanoXorKernelRuns) {
  const RunResult r = run_one(kNanoXorCuda, cuda_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stats.device_kernel_launches, 1);
  // Reference checksum computed by the same stencil on the host.
  EXPECT_EQ(r.stdout_text, "checksum 1431\n");
}

TEST(Cuda, MissingMemcpyGivesGarbageNotCrash) {
  // Drop the device->host copy: output stays uninitialized host memory.
  std::string src = kNanoXorCuda;
  const std::string copy_back =
      "cudaMemcpy(output, d_out, N * N * sizeof(int), "
      "cudaMemcpyDeviceToHost);";
  const auto pos = src.find(copy_back);
  ASSERT_NE(pos, std::string::npos);
  src.erase(pos, copy_back.size());
  const RunResult r = run_one(src, cuda_caps());
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.stats.read_uninitialized);
  EXPECT_NE(r.stdout_text, "checksum 1431\n");
}

TEST(Cuda, WrongMemcpyDirectionFails) {
  std::string src = kNanoXorCuda;
  const std::string good =
      "cudaMemcpy(d_in, input, N * N * sizeof(int), cudaMemcpyHostToDevice);";
  const auto pos = src.find(good);
  ASSERT_NE(pos, std::string::npos);
  src.replace(pos, good.size(),
              "cudaMemcpy(d_in, input, N * N * sizeof(int), "
              "cudaMemcpyDeviceToHost);");
  const RunResult r = run_one(src, cuda_caps());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_category(r.diags, DiagCategory::RuntimeFault));
}

TEST(Cuda, HostDerefOfDevicePointerTraps) {
  const RunResult r = run_one(R"(
int main() {
  double* d;
  cudaMalloc((void**)&d, 8 * 8);
  d[0] = 1.0;
  return 0;
}
)",
                              cuda_caps());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_category(r.diags, DiagCategory::RuntimeFault));
}

TEST(Cuda, KernelDerefOfHostPointerTraps) {
  const RunResult r = run_one(R"(
#include <stdlib.h>
__global__ void k(double* p) { p[0] = 2.0; }
int main() {
  double* h = (double*) malloc(8 * sizeof(double));
  k<<<1, 1>>>(h);
  free(h);
  return 0;
}
)",
                              cuda_caps());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_category(r.diags, DiagCategory::RuntimeFault));
}

TEST(Cuda, KernelLaunchWithoutConfigRejected) {
  Executable exe = compile_one(R"(
__global__ void k(int* p) { }
int main() { k(0); return 0; }
)",
                               cuda_caps());
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::ArgTypeMismatch));
}

TEST(Cuda, GlobalQualifierRejectedWithoutCuda) {
  Executable exe = compile_one(
      "__global__ void k(int* p) { }\nint main() { return 0; }\n",
      omp_caps());
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::CodeSyntax));
}

TEST(Cuda, AtomicAddAccumulates) {
  const RunResult r = run_one(R"(
#include <stdio.h>
__global__ void acc(double* sum) {
  atomicAdd(sum, 1.0);
}
int main() {
  double* d_sum;
  cudaMalloc((void**)&d_sum, sizeof(double));
  cudaMemset(d_sum, 0, sizeof(double));
  acc<<<4, 8>>>(d_sum);
  double h_sum = 0;
  cudaMemcpy(&h_sum, d_sum, sizeof(double), cudaMemcpyDeviceToHost);
  printf("%.0f\n", h_sum);
  return 0;
}
)",
                              cuda_caps());
  EXPECT_EQ(r.stdout_text, "32\n") << r.stderr_text;
}

// ---------------------------------------------------- OpenMP offload ----

namespace {

// The paper's Listing 3: correct OpenMP offload translation of nanoXOR.
const char* kNanoXorOmpCorrect = R"(
#include <stdio.h>
#include <stdlib.h>

void cellsXOR(const int* input, int* output, size_t N) {
#pragma omp target data map(to: input[0:N*N]) map(from: output[0:N*N])
  {
#pragma omp target teams distribute parallel for collapse(2)
    for (int i = 0; i < N; i++) {
      for (int j = 0; j < N; j++) {
        int count = 0;
        if (i > 0 && input[(i - 1) * N + j] == 1) count++;
        if (i < N - 1 && input[(i + 1) * N + j] == 1) count++;
        if (j > 0 && input[i * N + (j - 1)] == 1) count++;
        if (j < N - 1 && input[i * N + (j + 1)] == 1) count++;
        output[i * N + j] = (count == 1) ? 1 : 0;
      }
    }
  }
}

int main() {
  size_t N = 8;
  int* input = (int*) malloc(N * N * sizeof(int));
  int* output = (int*) malloc(N * N * sizeof(int));
  for (size_t k = 0; k < N * N; k++) input[k] = (k * 7 + 3) % 5 == 0 ? 1 : 0;
  cellsXOR(input, output, N);
  long sum = 0;
  for (size_t k = 0; k < N * N; k++) sum += output[k] * (long)(k + 1);
  printf("checksum %ld\n", sum);
  free(input);
  free(output);
  return 0;
}
)";

}  // namespace

TEST(Omp, Listing3CorrectTranslationMatchesCuda) {
  const RunResult r = run_one(kNanoXorOmpCorrect, omp_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "checksum 1431\n");
  EXPECT_GE(r.stats.device_kernel_launches, 1);
  EXPECT_GE(r.stats.h2d_copies, 1);
  EXPECT_GE(r.stats.d2h_copies, 1);
}

TEST(Omp, Listing4MissingTargetProducesWrongAnswer) {
  // The paper's Listing 4: the inner directive lost `target` and
  // `parallel for`; the loop runs on the host, the device `output`
  // shadow is never written, and the from-map copies garbage back.
  std::string src = kNanoXorOmpCorrect;
  const std::string good = "#pragma omp target teams distribute parallel for "
                           "collapse(2)";
  const auto pos = src.find(good);
  ASSERT_NE(pos, std::string::npos);
  src.replace(pos, good.size(),
              "#pragma omp teams distribute collapse(2)");
  const RunResult r = run_one(src, omp_caps());
  EXPECT_TRUE(r.ok);  // builds and runs...
  EXPECT_NE(r.stdout_text, "checksum 1431\n");  // ...but the answer is wrong
  EXPECT_EQ(r.stats.target_regions, 0);
  EXPECT_TRUE(r.stats.read_uninitialized);
}

TEST(Omp, MissingMapClauseTrapsInKernel) {
  const RunResult r = run_one(R"(
#include <stdlib.h>
int main() {
  int n = 16;
  double* a = (double*) malloc(n * sizeof(double));
#pragma omp target teams distribute parallel for
  for (int i = 0; i < n; i++) a[i] = 2.0 * i;
  free(a);
  return 0;
}
)",
                              omp_caps());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_category(r.diags, DiagCategory::RuntimeFault));
}

TEST(Omp, TargetWithMapComputesCorrectly) {
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  int n = 16;
  double* a = (double*) malloc(n * sizeof(double));
#pragma omp target teams distribute parallel for map(from: a[0:n])
  for (int i = 0; i < n; i++) a[i] = 2.0 * i;
  double s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  printf("%.0f\n", s);
  free(a);
  return 0;
}
)",
                              omp_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "240\n");
  EXPECT_EQ(r.stats.target_regions, 1);
}

TEST(Omp, ReductionOnTargetCopiesBack) {
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  int n = 100;
  double* a = (double*) malloc(n * sizeof(double));
  for (int i = 0; i < n; i++) a[i] = 1.0;
  double sum = 0.0;
#pragma omp target teams distribute parallel for map(to: a[0:n]) reduction(+:sum)
  for (int i = 0; i < n; i++) sum += a[i];
  printf("%.0f\n", sum);
  free(a);
  return 0;
}
)",
                              omp_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "100\n");
}

TEST(Omp, MissingReductionClauseLosesSum) {
  // Without reduction(), the scalar written on the device stays private
  // to the region: the host copy remains 0 — the silent wrong answer an
  // LLM translation produces when it drops the clause.
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  int n = 100;
  double* a = (double*) malloc(n * sizeof(double));
  for (int i = 0; i < n; i++) a[i] = 1.0;
  double sum = 0.0;
#pragma omp target teams distribute parallel for map(to: a[0:n])
  for (int i = 0; i < n; i++) sum += a[i];
  printf("%.0f\n", sum);
  free(a);
  return 0;
}
)",
                              omp_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "0\n");
}

TEST(Omp, HostThreadsModelStillCorrectWithoutOffload) {
  // OpenMP threads (CPU) build: parallel for executes on the host.
  const RunResult r = run_one(R"(
#include <stdio.h>
int main() {
  int n = 50;
  double sum = 0.0;
#pragma omp parallel for reduction(+:sum)
  for (int i = 0; i < n; i++) sum += i;
  printf("%.0f\n", sum);
  return 0;
}
)",
                              omp_caps(/*offload=*/false));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.stdout_text, "1225\n");
  EXPECT_GE(r.stats.host_parallel_regions, 1);
  EXPECT_EQ(r.stats.device_kernel_launches, 0);
}

TEST(Omp, TargetFallsBackToHostWithoutOffloadFlag) {
  // -fopenmp without -fopenmp-targets: target regions execute on the host.
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  int n = 8;
  double* a = (double*) malloc(n * sizeof(double));
#pragma omp target teams distribute parallel for map(from: a[0:n])
  for (int i = 0; i < n; i++) a[i] = 1.0;
  double s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  printf("%.0f\n", s);
  return 0;
}
)",
                              omp_caps(/*offload=*/false));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.stdout_text, "8\n");  // correct result...
  EXPECT_EQ(r.stats.device_kernel_launches, 0);  // ...but never on the GPU
}

TEST(Omp, PragmasIgnoredWithoutOpenmpFlag) {
  // No -fopenmp at all: pragma is ignored, code runs serially.
  Capabilities serial;  // nothing enabled
  const RunResult r = run_one(R"(
#include <stdio.h>
int main() {
  double sum = 0.0;
#pragma omp parallel for reduction(+:sum)
  for (int i = 0; i < 10; i++) sum += i;
  printf("%.0f\n", sum);
  return 0;
}
)",
                              serial);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.stdout_text, "45\n");
  EXPECT_EQ(r.stats.host_parallel_regions, 0);
}

TEST(Omp, InvalidDirectiveNameIsCompileError) {
  Executable exe = compile_one(R"(
int main() {
#pragma omp target teams distribute parallel forx
  for (int i = 0; i < 4; i++) {}
  return 0;
}
)",
                               omp_caps());
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::OmpInvalidDirective));
}

TEST(Omp, BadMapTypeIsCompileError) {
  Executable exe = compile_one(R"(
#include <stdlib.h>
int main() {
  int n = 4;
  double* a = (double*) malloc(n * 8);
#pragma omp target teams distribute parallel for map(frm: a[0:n])
  for (int i = 0; i < n; i++) a[i] = i;
  return 0;
}
)",
                               omp_caps());
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::OmpInvalidDirective));
}

TEST(Omp, DistributeWithoutTeamsIsCompileError) {
  Executable exe = compile_one(R"(
int main() {
#pragma omp target distribute
  for (int i = 0; i < 4; i++) {}
  return 0;
}
)",
                               omp_caps());
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::OmpInvalidDirective));
}

TEST(Omp, TargetUpdateMovesData) {
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  int n = 4;
  double* a = (double*) malloc(n * sizeof(double));
  for (int i = 0; i < n; i++) a[i] = 1.0;
#pragma omp target data map(to: a[0:n])
  {
#pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) a[i] = a[i] + 1.0;
#pragma omp target update from(a)
    double mid = a[0];
    printf("%.0f\n", mid);
  }
  return 0;
}
)",
                              omp_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "2\n");
}

// ------------------------------------------------------------ Kokkos ----

TEST(Kokkos, ParallelForAndDeepCopy) {
  const RunResult r = run_one(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int main(int argc, char** argv) {
  Kokkos::initialize();
  {
    int n = 16;
    Kokkos::View<double*> a("a", n);
    Kokkos::parallel_for("fill", n, KOKKOS_LAMBDA(int i) {
      a(i) = 3.0 * i;
    });
    Kokkos::fence();
    double total = 0.0;
    Kokkos::parallel_reduce(n, KOKKOS_LAMBDA(int i, double& sum) {
      sum += a(i);
    }, total);
    printf("%.0f\n", total);
  }
  Kokkos::finalize();
  return 0;
}
)",
                              kokkos_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "360\n");
  EXPECT_GE(r.stats.device_kernel_launches, 2);
}

TEST(Kokkos, HostAccessOfDeviceViewTraps) {
  const RunResult r = run_one(R"(
#include <Kokkos_Core.hpp>
int main() {
  Kokkos::initialize();
  Kokkos::View<double*> a("a", 4);
  a(0) = 1.0;  // host access to device memory
  Kokkos::finalize();
  return 0;
}
)",
                              kokkos_caps());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_category(r.diags, DiagCategory::RuntimeFault));
}

TEST(Kokkos, MirrorRoundTrip) {
  const RunResult r = run_one(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int main() {
  Kokkos::initialize();
  {
    int n = 8;
    Kokkos::View<double*> dev("dev", n);
    Kokkos::View<double*> host = Kokkos::create_mirror_view(dev);
    for (int i = 0; i < n; i++) host(i) = 1.0 * i;
    Kokkos::deep_copy(dev, host);
    Kokkos::parallel_for(n, KOKKOS_LAMBDA(int i) { dev(i) = dev(i) * 2.0; });
    Kokkos::deep_copy(host, dev);
    double s = 0;
    for (int i = 0; i < n; i++) s += host(i);
    printf("%.0f\n", s);
  }
  Kokkos::finalize();
  return 0;
}
)",
                              kokkos_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "56\n");
}

TEST(Kokkos, MissingDeepCopyBackReadsStaleZeros) {
  // Kokkos views are zero-initialised: forgetting the device->host copy
  // yields zeros (wrong answer), not garbage. Mirrors real behaviour.
  const RunResult r = run_one(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int main() {
  Kokkos::initialize();
  {
    int n = 8;
    Kokkos::View<double*> dev("dev", n);
    Kokkos::View<double*> host = Kokkos::create_mirror_view(dev);
    Kokkos::parallel_for(n, KOKKOS_LAMBDA(int i) { dev(i) = 5.0; });
    double s = 0;
    for (int i = 0; i < n; i++) s += host(i);
    printf("%.0f\n", s);
  }
  Kokkos::finalize();
  return 0;
}
)",
                              kokkos_caps());
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.stats.read_uninitialized);
}

TEST(Kokkos, Rank2ViewAndMDRange) {
  const RunResult r = run_one(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int main() {
  Kokkos::initialize();
  {
    int n = 4;
    Kokkos::View<double**> m("m", n, n);
    Kokkos::parallel_for("init",
        Kokkos::MDRangePolicy<Kokkos::Rank<2>>({0, 0}, {n, n}),
        KOKKOS_LAMBDA(int i, int j) { m(i, j) = i * 10.0 + j; });
    double total = 0.0;
    Kokkos::parallel_reduce(n, KOKKOS_LAMBDA(int i, double& sum) {
      for (int j = 0; j < n; j++) sum += m(i, j);
    }, total);
    printf("%.0f\n", total);
  }
  Kokkos::finalize();
  return 0;
}
)",
                              kokkos_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "264\n");
}

TEST(Kokkos, ViewRankMismatchIsCompileError) {
  Executable exe = compile_one(R"(
#include <Kokkos_Core.hpp>
int main() {
  Kokkos::initialize();
  Kokkos::View<double*> a("a", 4);
  double x = a(1, 2);
  Kokkos::finalize();
  return 0;
}
)",
                               kokkos_caps());
  EXPECT_FALSE(exe.ok());
  EXPECT_TRUE(has_category(exe.diags, DiagCategory::ArgTypeMismatch));
}

// ------------------------------------------------------------ cuRAND ----

TEST(Curand, DeterministicStreamInKernel) {
  const RunResult r = run_one(R"(
#include <stdio.h>
#include <stdlib.h>
#include <curand_kernel.h>
__global__ void draw(double* out, int n) {
  curandState state;
  curand_init(1234, 0, 0, &state);
  for (int i = 0; i < n; i++) out[i] = curand_uniform(&state);
}
int main() {
  int n = 64;
  double* d;
  cudaMalloc((void**)&d, n * sizeof(double));
  draw<<<1, 1>>>(d, n);
  double* h = (double*) malloc(n * sizeof(double));
  cudaMemcpy(h, d, n * sizeof(double), cudaMemcpyDeviceToHost);
  double mean = 0;
  for (int i = 0; i < n; i++) {
    if (h[i] <= 0.0 || h[i] > 1.0) { printf("out of range\n"); return 1; }
    mean += h[i];
  }
  printf("ok %d\n", mean / n > 0.2 && mean / n < 0.8 ? 1 : 0);
  return 0;
}
)",
                              cuda_caps());
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "ok 1\n");
}
