#include <gtest/gtest.h>

#include "codeanal/functions.hpp"
#include "codeanal/includes.hpp"
#include "codeanal/lexer.hpp"
#include "codeanal/metrics.hpp"

namespace ca = pareval::codeanal;

TEST(Lexer, BasicTokens) {
  const auto r = ca::lex("int x = 42 + y;");
  ASSERT_TRUE(r.errors.empty());
  ASSERT_GE(r.tokens.size(), 8u);
  EXPECT_TRUE(r.tokens[0].is_ident("int"));
  EXPECT_TRUE(r.tokens[1].is_ident("x"));
  EXPECT_TRUE(r.tokens[2].is_punct("="));
  EXPECT_EQ(r.tokens[3].kind, ca::TokKind::IntLit);
  EXPECT_EQ(r.tokens.back().kind, ca::TokKind::EndOfFile);
}

TEST(Lexer, FloatForms) {
  const auto r = ca::lex("1.5 3e-2 2.0f 7u 0x1F .25");
  EXPECT_EQ(r.tokens[0].kind, ca::TokKind::FloatLit);
  EXPECT_EQ(r.tokens[1].kind, ca::TokKind::FloatLit);
  EXPECT_EQ(r.tokens[2].kind, ca::TokKind::FloatLit);
  EXPECT_EQ(r.tokens[3].kind, ca::TokKind::IntLit);
  EXPECT_EQ(r.tokens[4].kind, ca::TokKind::IntLit);
  EXPECT_EQ(r.tokens[5].kind, ca::TokKind::FloatLit);
}

TEST(Lexer, CudaLaunchTokens) {
  const auto r = ca::lex("kernel<<<grid, block>>>(a, b);");
  bool open = false, close = false;
  for (const auto& t : r.tokens) {
    if (t.is_punct("<<<")) open = true;
    if (t.is_punct(">>>")) close = true;
  }
  EXPECT_TRUE(open);
  EXPECT_TRUE(close);
}

TEST(Lexer, StringEscapes) {
  const auto r = ca::lex(R"(printf("a\n\"b\"");)");
  ASSERT_EQ(r.tokens[2].kind, ca::TokKind::StringLit);
  EXPECT_EQ(r.tokens[2].text, "a\n\"b\"");
}

TEST(Lexer, PpDirectiveCapturesWholeLine) {
  const auto r = ca::lex("#include <stdio.h>\nint x;");
  ASSERT_EQ(r.tokens[0].kind, ca::TokKind::PpDirective);
  EXPECT_EQ(r.tokens[0].text, "#include <stdio.h>");
  EXPECT_TRUE(r.tokens[1].is_ident("int"));
}

TEST(Lexer, PragmaWithContinuation) {
  const auto r = ca::lex("#pragma omp target \\\n  map(to: x)\nint y;");
  ASSERT_EQ(r.tokens[0].kind, ca::TokKind::PpDirective);
  EXPECT_NE(r.tokens[0].text.find("map(to: x)"), std::string::npos);
}

TEST(Lexer, CommentsSkippedLinesTracked) {
  const auto r = ca::lex("// c1\n/* c2\nc3 */ int x;");
  EXPECT_TRUE(r.tokens[0].is_ident("int"));
  EXPECT_EQ(r.tokens[0].line, 3);
}

TEST(Lexer, HashMidLineIsNotDirective) {
  const auto r = ca::lex("int x; #bad");
  // '#' not at line start: lexed as error (no '#' operator) not directive.
  EXPECT_FALSE(r.errors.empty());
}

TEST(Lexer, UnterminatedString) {
  const auto r = ca::lex("char* s = \"abc;\n");
  EXPECT_FALSE(r.errors.empty());
}

TEST(Lexer, StripComments) {
  EXPECT_EQ(ca::strip_comments("a /* x */ b // y\nc"), "a  b \nc");
  // Comment markers inside strings are preserved.
  EXPECT_EQ(ca::strip_comments("\"//not\""), "\"//not\"");
}

TEST(Metrics, SlocCountsNonBlankNonComment) {
  const char* src = R"(
// comment only
int main() {
  /* block
     comment */
  return 0;
}

)";
  EXPECT_EQ(ca::sloc(src), 3);  // "int main() {", "return 0;", "}"
}

TEST(Metrics, CyclomaticStraightLineIsOne) {
  const auto fns = ca::function_complexity("int f() { return 1; }");
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "f");
  EXPECT_EQ(fns[0].complexity, 1);
}

TEST(Metrics, CyclomaticCountsBranchesAndLogicalOps) {
  const char* src = R"(
int f(int x) {
  if (x > 0 && x < 10) { return 1; }
  for (int i = 0; i < x; i++) {
    while (x > 2) { x--; }
  }
  return x > 5 ? 1 : 0;
}
)";
  const auto fns = ca::function_complexity(src);
  ASSERT_EQ(fns.size(), 1u);
  // 1 + if + && + for + while + ternary = 6
  EXPECT_EQ(fns[0].complexity, 6);
}

TEST(Metrics, MultipleFunctions) {
  const char* src = R"(
int a() { return 0; }
int b(int x) { if (x) return 1; return 0; }
)";
  const auto fns = ca::function_complexity(src);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "a");
  EXPECT_EQ(fns[1].name, "b");
  EXPECT_EQ(ca::file_complexity(src), 3);
}

TEST(Metrics, RepoMetricsExcludesDocs) {
  pareval::vfs::Repo repo;
  repo.write("main.cpp", "int main() { return 0; }\n");
  repo.write("README.md", "docs\nmore docs\n");
  repo.write("Makefile", "all:\n\techo hi\n");
  const auto m = ca::repo_metrics(repo);
  EXPECT_EQ(m.files, 2);  // main.cpp + Makefile
  EXPECT_EQ(m.sloc, 3);   // 1 (cpp) + 2 (make)
}

TEST(Functions, FindFunctionsSkipsStructsAndProtos) {
  const char* src = R"(
struct Point { int x; int y; };
int declared_only(int a);
int real_fn(int a) { return a + 1; }
)";
  const auto lexed = ca::lex(src);
  const auto fns = ca::find_functions(lexed.tokens);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "real_fn");
}

TEST(Functions, CudaKernelDetected) {
  const char* src =
      "__global__ void k(int* p, size_t n) { if (n) p[0] = 1; }";
  const auto lexed = ca::lex(src);
  const auto fns = ca::find_functions(lexed.tokens);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "k");
}

TEST(Functions, ChunkerKeepsSmallFileWhole) {
  const char* src = "int a() { return 0; }\nint b() { return 1; }\n";
  const auto chunks = ca::split_into_chunks(src, 4096);
  ASSERT_EQ(chunks.size(), 1u);
}

TEST(Functions, ChunkerSplitsAtFunctionBoundaries) {
  std::string src;
  for (int i = 0; i < 6; ++i) {
    src += "int fn" + std::to_string(i) +
           "(int x) { int y = x * 2; return y + " + std::to_string(i) +
           "; }\n";
  }
  const auto chunks = ca::split_into_chunks(src, 120);
  EXPECT_GT(chunks.size(), 1u);
  std::string merged;
  for (const auto& c : chunks) merged += c.text;
  EXPECT_EQ(merged, src);  // lossless split
}

TEST(Includes, ScanFindsQuotedAndAngled) {
  const char* src =
      "#include <stdio.h>\n#include \"kernel.h\"\nint main() {}\n";
  const auto incs = ca::scan_includes(src);
  ASSERT_EQ(incs.size(), 2u);
  EXPECT_TRUE(incs[0].angled);
  EXPECT_EQ(incs[0].target, "stdio.h");
  EXPECT_FALSE(incs[1].angled);
  EXPECT_EQ(incs[1].target, "kernel.h");
}

TEST(Includes, GraphResolvesSiblingAndRoot) {
  pareval::vfs::Repo repo;
  repo.write("src/main.cpp", "#include \"kernel.h\"\n");
  repo.write("src/kernel.h", "int k();\n");
  repo.write("other.cpp", "#include \"src/kernel.h\"\n");
  const auto g = ca::build_include_graph(repo);
  ASSERT_EQ(g.edges.at("src/main.cpp").size(), 1u);
  EXPECT_EQ(g.edges.at("src/main.cpp")[0], "src/kernel.h");
  EXPECT_EQ(g.edges.at("other.cpp")[0], "src/kernel.h");
  EXPECT_TRUE(g.unresolved.empty());
}

TEST(Includes, UnresolvedRecorded) {
  pareval::vfs::Repo repo;
  repo.write("main.cpp", "#include \"missing.h\"\n");
  const auto g = ca::build_include_graph(repo);
  ASSERT_EQ(g.unresolved.at("main.cpp").size(), 1u);
}

TEST(Includes, TranslationOrderDependenciesFirst) {
  pareval::vfs::Repo repo;
  repo.write("main.cpp", "#include \"a.h\"\n#include \"b.h\"\n");
  repo.write("a.h", "#include \"b.h\"\n");
  repo.write("b.h", "int b();\n");
  repo.write("Makefile", "all:\n");
  const auto order = ca::translation_order(repo);
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](const std::string& p) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == p) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos("b.h"), pos("a.h"));
  EXPECT_LT(pos("a.h"), pos("main.cpp"));
  EXPECT_EQ(order.back(), "Makefile");  // non-source last
}
