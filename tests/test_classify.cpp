// Tests for the §6.3 classification pipeline over the staged scoring
// provenance: per-sample labels from stage outcomes must match the legacy
// keyword table on the seed defect corpus (that equality is what keeps
// Figure 3's counts pinned across the staged-pipeline refactor), the
// provenance path must cover build/run/device failures exactly, and the
// word2vec + DBSCAN cluster merge must be deterministic across harness
// thread counts.

#include <gtest/gtest.h>

#include "eval/classify.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"

using namespace pareval;
using llm::Technique;
using xlate::DefectKind;

namespace {

/// A reduced but defect-diverse corpus: every cell of one pair at N
/// samples (the same shape examples/error_analysis.cpp sweeps).
std::vector<eval::TaskResult> seed_corpus(const llm::Pair& pair,
                                          int samples,
                                          unsigned threads = 1) {
  eval::HarnessConfig cfg;
  cfg.samples_per_task = samples;
  cfg.threads = threads;
  cfg.use_score_cache = false;
  return eval::run_pair_sweep(pair, cfg);
}

}  // namespace

TEST(ClassifyProvenance, MatchesKeywordTableOnSeedCorpus) {
  // The acceptance invariant: for every failed sample, the
  // provenance-first labeller and the keyword-only labeller agree on both
  // the label and whether a label exists at all. Equal per-sample labels
  // imply equal cluster votes, equal merged labels, and therefore equal
  // Figure 3 counts.
  int failures = 0;
  for (const llm::Pair& pair :
       {llm::all_pairs()[0], llm::all_pairs()[1]}) {
    for (const auto& task : seed_corpus(pair, 8)) {
      for (const auto& outcome : task.outcomes) {
        if (outcome.passed_overall) continue;
        ++failures;
        DefectKind provenance_kind = DefectKind::Semantic;
        DefectKind keyword_kind = DefectKind::Semantic;
        const bool provenance_hit =
            eval::label_outcome(outcome, &provenance_kind);
        const bool keyword_hit =
            eval::label_log(outcome.failure_log(), &keyword_kind);
        EXPECT_EQ(provenance_hit, keyword_hit)
            << "labelled-ness diverged for " << task.llm << "/" << task.app
            << "\nlog:\n"
            << outcome.failure_log();
        if (provenance_hit && keyword_hit) {
          EXPECT_EQ(provenance_kind, keyword_kind)
              << "label diverged for " << task.llm << "/" << task.app
              << ": provenance=" << xlate::defect_name(provenance_kind)
              << " keyword=" << xlate::defect_name(keyword_kind)
              << "\nlog:\n"
              << outcome.failure_log();
        }
      }
    }
  }
  // The corpus must actually exercise the comparison.
  EXPECT_GT(failures, 50);
}

TEST(ClassifyProvenance, ExactForBuildRunAndDeviceFailures) {
  const auto tasks = seed_corpus(llm::all_pairs()[0], 8);
  const auto result = eval::classify_failures(tasks);
  ASSERT_FALSE(result.logs.empty());
  // Every labelled sample is either provenance-exact or keyword-resolved.
  int labelled = 0;
  for (const auto& log : result.logs) labelled += log.labelled;
  EXPECT_EQ(result.provenance_exact + result.keyword_fallback, labelled);
  // The staged pipeline makes most of the corpus exact: single-category
  // build failures and every validate-stage (mismatch/device) failure.
  EXPECT_GT(result.provenance_exact, result.keyword_fallback);
  for (const auto& log : result.logs) {
    if (log.stages.empty()) continue;
    const eval::StageOutcome* failed = nullptr;
    for (const auto& s : log.stages) {
      if (s.verdict == eval::StageVerdict::Fail) {
        failed = &s;
        break;
      }
    }
    ASSERT_NE(failed, nullptr);
    if (failed->stage == eval::Stage::Validate) {
      EXPECT_TRUE(log.labelled);
      EXPECT_TRUE(log.exact);
    }
  }
}

TEST(ClassifyProvenance, SyntheticStageCases) {
  auto failed_build = [](const char* detail) {
    eval::SampleOutcome o;
    o.built_overall = false;
    o.stages.push_back({eval::Stage::Build, eval::StageVerdict::Fail, -1,
                        detail, "some build log\n"});
    return o;
  };
  DefectKind kind;
  bool exact = false;

  // Single-category build diagnostics map straight to their Figure 3 row.
  ASSERT_TRUE(
      eval::label_outcome(failed_build("undeclared-identifier"), &kind,
                          &exact));
  EXPECT_EQ(kind, DefectKind::UndeclaredId);
  EXPECT_TRUE(exact);

  // Missing-header is spelling-ambiguous under the pinned keyword pass,
  // so it resolves via the fallback over the build slice: the
  // preprocessor spelling collapses into the makefile-syntax row (its
  // line ends "not found", which the /bin/sh rule claims first), while
  // the tool-level spelling reaches the real MissingHeader rule.
  auto missing_preproc = failed_build("missing-header");
  missing_preproc.stages[0].log =
      "src/main.cpp:2: error: 'xor_common.h.orig' file not found\n";
  ASSERT_TRUE(eval::label_outcome(missing_preproc, &kind, &exact));
  EXPECT_EQ(kind, DefectKind::MakefileSyntax);
  EXPECT_FALSE(exact);
  auto missing_tool = failed_build("missing-header");
  missing_tool.stages[0].log =
      "g++: error: foo.c: No such file or directory\n";
  ASSERT_TRUE(eval::label_outcome(missing_tool, &kind, &exact));
  EXPECT_EQ(kind, DefectKind::MissingHeader);
  EXPECT_FALSE(exact);

  // Mixed build diagnostics fall back to the keyword scan over the build
  // slice.
  eval::SampleOutcome mixed;
  mixed.stages.push_back(
      {eval::Stage::Build, eval::StageVerdict::Fail, -1,
       eval::kDetailMixedDiagnostics,
       "src/main.cpp:5: error: use of undeclared identifier 'x'\n"});
  ASSERT_TRUE(eval::label_outcome(mixed, &kind, &exact));
  EXPECT_EQ(kind, DefectKind::UndeclaredId);
  EXPECT_FALSE(exact);

  // Validate-stage failures are Semantic by construction, logs or not.
  eval::SampleOutcome device;
  device.built_overall = true;
  device.stages.push_back(
      {eval::Stage::Build, eval::StageVerdict::Pass, -1, "", ""});
  device.stages.push_back(
      {eval::Stage::Execute, eval::StageVerdict::Pass, 0, "", ""});
  device.stages.push_back({eval::Stage::Validate, eval::StageVerdict::Fail,
                           0, eval::kDetailNoDeviceLaunch, ""});
  ASSERT_TRUE(eval::label_outcome(device, &kind, &exact));
  EXPECT_EQ(kind, DefectKind::Semantic);
  EXPECT_TRUE(exact);

  // No provenance, no log: nothing to label.
  eval::SampleOutcome empty;
  EXPECT_FALSE(eval::label_outcome(empty, &kind, &exact));
}

TEST(ClassifyDeterminism, ClusterMergeStableAcrossThreadCounts) {
  // The full pipeline — harness sweep, embeddings, DBSCAN, cluster-merge
  // vote — must be bit-identical whether the corpus was produced serially
  // or on the pool (and whether scores came through a cache).
  const llm::Pair pair = llm::all_pairs()[0];
  const auto serial_tasks = seed_corpus(pair, 6, /*threads=*/1);
  eval::HarnessConfig pooled_cfg;
  pooled_cfg.samples_per_task = 6;
  pooled_cfg.threads = 0;  // the global pool
  eval::ScoreCache cache;
  pooled_cfg.score_cache = &cache;
  const auto pooled_tasks = eval::run_pair_sweep(pair, pooled_cfg);
  ASSERT_EQ(serial_tasks, pooled_tasks);

  const auto a = eval::classify_failures(serial_tasks);
  const auto b = eval::classify_failures(pooled_tasks);
  EXPECT_EQ(a.raw_clusters, b.raw_clusters);
  EXPECT_EQ(a.provenance_exact, b.provenance_exact);
  EXPECT_EQ(a.keyword_fallback, b.keyword_fallback);
  EXPECT_EQ(a.counts, b.counts);
  ASSERT_EQ(a.logs.size(), b.logs.size());
  for (std::size_t i = 0; i < a.logs.size(); ++i) {
    EXPECT_EQ(a.logs[i].cluster, b.logs[i].cluster);
    EXPECT_EQ(a.logs[i].label, b.logs[i].label);
    EXPECT_EQ(a.logs[i].labelled, b.logs[i].labelled);
    EXPECT_EQ(a.logs[i].exact, b.logs[i].exact);
  }
}

TEST(ClassifyReport, StageBreakdownRendersProvenanceCounts) {
  const auto tasks = seed_corpus(llm::all_pairs()[0], 4);
  const std::string report = eval::stage_breakdown_report(
      eval::Suite::paper(), eval::SweepSpec::paper(), tasks);
  EXPECT_NE(report.find("Build fail"), std::string::npos);
  EXPECT_NE(report.find("No device"), std::string::npos);
  EXPECT_NE(report.find("nanoXOR"), std::string::npos);
}
