// TU compile cache tests: the invalidation properties the content-
// addressed key promises (editing a transitively-included header
// invalidates exactly the dependent TUs; caps/defines/toolchain changes
// miss; re-registering identical content hits), bit-identity of cached vs
// uncached diagnostics and downstream StagedScores across the seed
// corpus, persisted-cache round trips (including failed-plan
// reconstruction, version-mismatch cold starts, and the capacity bound),
// and concurrent compile determinism across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "buildsim/builder.hpp"
#include "buildsim/tucache.hpp"
#include "eval/harness.hpp"
#include "execsim/driver.hpp"
#include "support/cachestore.hpp"
#include "support/strings.hpp"

using namespace pareval;
using buildsim::TuCompileCache;
using minic::Capabilities;
using vfs::Repo;

namespace {

Repo two_tu_repo() {
  // a.cpp depends (transitively) on inc/top.h -> inc/deep.h; b.cpp on
  // nothing but itself. One Makefile compiles and links both.
  Repo repo;
  repo.write("Makefile",
             "all: app\n"
             "app: a.o b.o\n"
             "\tg++ a.o b.o -o app\n"
             "a.o: a.cpp\n"
             "\tg++ -c a.cpp -o a.o\n"
             "b.o: b.cpp\n"
             "\tg++ -c b.cpp -o b.o\n");
  repo.write("a.cpp",
             "#include \"inc/top.h\"\n"
             "int a_value() { return DEEP_V; }\n");
  repo.write("inc/top.h", "#include \"deep.h\"\n");
  repo.write("inc/deep.h", "#define DEEP_V 5\n");
  repo.write("b.cpp",
             "#include <stdio.h>\n"
             "int a_value();\n"
             "int main() { printf(\"%d\\n\", a_value()); return 0; }\n");
  return repo;
}

/// Compile one source of `repo` through `cache` with default caps/defines.
std::shared_ptr<minic::TranslationUnit> compile(TuCompileCache& cache,
                                                const Repo& repo,
                                                const std::string& source,
                                                const Capabilities& caps = {},
                                                const char* tool = "gcc") {
  return cache.compile(repo, source, caps, {}, tool);
}

Repo failing_makefile_repo() {
  // The SWE-agent defect: recipe TABs replaced by spaces — the build
  // fails before any TU compiles, the canonical failed-plan case.
  Repo repo;
  repo.write("Makefile", "all: app\n    g++ main.cpp -o app\n");
  repo.write("main.cpp", "int main() { return 0; }\n");
  return repo;
}

Repo failing_tu_repo() {
  Repo repo;
  repo.write("Makefile",
             "all: app\napp: main.cpp\n\tg++ main.cpp -o app\n");
  repo.write("main.cpp",
             "#include \"helper.h\"\n"
             "int main() { return undeclared_thing(); }\n");
  repo.write("helper.h", "int helper() { return 1; }\n");
  return repo;
}

}  // namespace

// ----------------------------------------------------- invalidation -----

TEST(TuCache, IdenticalRebuildSharesEveryTu) {
  TuCompileCache cache;
  const Repo repo = two_tu_repo();
  const auto r1 = buildsim::build_repo(repo, "", &cache);
  ASSERT_TRUE(r1.ok) << r1.log;
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);

  // The second build differs only in its build file — the TU cache's
  // raison d'être: every TU compile is shared.
  Repo repo2 = repo;
  repo2.write("Makefile",
              "all: prog\n"
              "prog: a.o b.o\n"
              "\tg++ a.o b.o -o prog\n"
              "a.o: a.cpp\n"
              "\tg++ -c a.cpp -o a.o\n"
              "b.o: b.cpp\n"
              "\tg++ -c b.cpp -o b.o\n");
  const auto r2 = buildsim::build_repo(repo2, "", &cache);
  ASSERT_TRUE(r2.ok) << r2.log;
  EXPECT_EQ(cache.misses(), 2u);  // no new compiles
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(TuCache, TransitiveHeaderEditInvalidatesExactlyDependents) {
  TuCompileCache cache;
  const Repo repo = two_tu_repo();
  const auto r1 = buildsim::build_repo(repo, "", &cache);
  ASSERT_TRUE(r1.ok) << r1.log;
  ASSERT_EQ(cache.misses(), 2u);

  // Identify the cached b.cpp TU so we can prove it is *shared*, not
  // merely re-compiled to the same thing.
  const auto b_before = compile(cache, repo, "b.cpp");
  EXPECT_EQ(cache.hits(), 1u);  // b.cpp was cached by the build

  Repo edited = repo;
  edited.write("inc/deep.h", "#define DEEP_V 6\n");  // transitive dep of a.cpp
  const auto r2 = buildsim::build_repo(edited, "", &cache);
  ASSERT_TRUE(r2.ok) << r2.log;
  // Exactly one TU (a.cpp) was invalidated and recompiled; b.cpp hit and
  // is the identical shared object.
  EXPECT_EQ(cache.misses(), 3u);
  const auto b_after = compile(cache, edited, "b.cpp");
  EXPECT_EQ(b_before.get(), b_after.get());

  // And the recompiled a.cpp really saw the edit.
  const auto run = execsim::run_executable(*r2.exe, {});
  EXPECT_EQ(run.stdout_text, "6\n");
}

TEST(TuCache, MainSourceEditInvalidates) {
  TuCompileCache cache;
  Repo repo = two_tu_repo();
  compile(cache, repo, "b.cpp");
  EXPECT_EQ(cache.misses(), 1u);
  repo.write("b.cpp", repo.at("b.cpp") + "// trailing comment\n");
  compile(cache, repo, "b.cpp");
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TuCache, WhitespaceIdenticalReregistrationHits) {
  TuCompileCache cache;
  const Repo repo = two_tu_repo();
  compile(cache, repo, "a.cpp");
  EXPECT_EQ(cache.misses(), 1u);

  // Rebuild the repo object from scratch with byte-identical sources (and
  // an unrelated extra file): the key is content-addressed per TU, not
  // whole-repo, so this must hit.
  Repo again;
  for (const auto& f : repo.files()) again.write(f.path, f.content);
  again.write("README.md", "unrelated\n");
  compile(cache, again, "a.cpp");
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(TuCache, CapsDefinesToolchainChangesMiss) {
  TuCompileCache cache;
  Repo repo;
  repo.write("main.cpp", "int main() { return 0; }\n");
  compile(cache, repo, "main.cpp");
  EXPECT_EQ(cache.misses(), 1u);

  Capabilities omp;
  omp.openmp = true;
  compile(cache, repo, "main.cpp", omp);         // caps change
  EXPECT_EQ(cache.misses(), 2u);

  cache.compile(repo, "main.cpp", {}, {{"N", "64"}}, "gcc");  // defines
  EXPECT_EQ(cache.misses(), 3u);

  compile(cache, repo, "main.cpp", {}, "clang");  // toolchain id
  EXPECT_EQ(cache.misses(), 4u);

  // Define *order* is semantic in the preprocessor (later wins): a
  // reordered list is a distinct key, never a false hit.
  cache.compile(repo, "main.cpp", {}, {{"A", "1"}, {"B", "2"}}, "gcc");
  cache.compile(repo, "main.cpp", {}, {{"B", "2"}, {"A", "1"}}, "gcc");
  EXPECT_EQ(cache.misses(), 6u);

  // And every configuration, re-requested identically, hits.
  compile(cache, repo, "main.cpp");
  compile(cache, repo, "main.cpp", omp);
  compile(cache, repo, "main.cpp", {}, "clang");
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 6u);
}

TEST(TuCache, AppearingQuotedIncludeTargetInvalidates) {
  // main.cpp quotes "stdio.h", which today falls through to the system
  // header. If a repo file of that name appears, resolution changes — the
  // missing-probe half of the manifest must catch it.
  TuCompileCache cache;
  Repo repo;
  repo.write("main.cpp",
             "#include \"stdio.h\"\n"
             "int main() { printf(\"x\\n\"); return 0; }\n");
  const auto tu1 = compile(cache, repo, "main.cpp");
  ASSERT_FALSE(tu1->diags.has_errors());
  EXPECT_EQ(cache.misses(), 1u);

  Repo shadowed = repo;
  shadowed.write("stdio.h", "#define printf not_printf\n");
  const auto tu2 = compile(cache, shadowed, "main.cpp");
  EXPECT_EQ(cache.misses(), 2u);  // not a (stale) hit
  EXPECT_TRUE(tu2->diags.has_errors());  // the shadow header breaks it
}

// ------------------------------------------------------ bit-identity ----

TEST(TuCache, CachedVsUncachedDiagnosticsBitIdentical) {
  const Repo repo = failing_tu_repo();
  const auto direct =
      execsim::compile_tu(repo, "main.cpp", Capabilities{}, {});
  ASSERT_TRUE(direct->diags.has_errors());

  TuCompileCache cache;
  const auto cold = compile(cache, repo, "main.cpp");
  const auto warm = compile(cache, repo, "main.cpp");
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cold.get(), warm.get());  // shared, not recompiled
  EXPECT_EQ(direct->diags.render(), cold->diags.render());

  // Persisted round trip: a fresh cache loading the file reconstructs the
  // failed TU from its serialized outcome — identical diagnostics, no
  // compile performed.
  const std::string path = "tu_cache_diag_test.json";
  ASSERT_TRUE(cache.save(path, 42));
  TuCompileCache loaded;
  ASSERT_TRUE(loaded.load(path, 42));
  const auto reconstructed = compile(loaded, repo, "main.cpp");
  EXPECT_EQ(loaded.persisted_hits(), 1u);
  EXPECT_EQ(loaded.misses(), 0u);
  EXPECT_EQ(direct->diags.render(), reconstructed->diags.render());
  EXPECT_EQ(direct->resolved_files, reconstructed->resolved_files);
  std::remove(path.c_str());
}

TEST(TuCache, FullBuildBitIdenticalThroughCache) {
  // Failing and succeeding builds, uncached vs TU-cached vs warm-file
  // plan reconstruction: BuildResult logs and diagnostics must match to
  // the byte.
  for (const Repo& repo : {failing_makefile_repo(), failing_tu_repo(),
                           two_tu_repo()}) {
    const auto uncached = buildsim::build_repo(repo);

    TuCompileCache cache;
    const auto cached = buildsim::build_repo(repo, "", &cache);
    EXPECT_EQ(uncached.ok, cached.ok);
    EXPECT_EQ(uncached.log, cached.log);
    EXPECT_EQ(uncached.diags.render(), cached.diags.render());
    EXPECT_EQ(uncached.build_system, cached.build_system);
    EXPECT_EQ(uncached.caps, cached.caps);

    const std::string path = "tu_cache_build_test.json";
    ASSERT_TRUE(cache.save(path, 7));
    TuCompileCache loaded;
    ASSERT_TRUE(loaded.load(path, 7));
    const auto warm = buildsim::build_repo(repo, "", &loaded);
    EXPECT_EQ(uncached.ok, warm.ok);
    EXPECT_EQ(uncached.log, warm.log);
    EXPECT_EQ(uncached.diags.render(), warm.diags.render());
    EXPECT_EQ(uncached.sole_error_category(), warm.sole_error_category());
    if (!uncached.ok) {
      // A persisted failed plan skips the whole build.
      EXPECT_EQ(loaded.plan_hits(), 1u);
      EXPECT_EQ(loaded.misses(), 0u);
      EXPECT_FALSE(warm.exe.has_value());
    } else {
      // Successful builds re-link a live executable.
      ASSERT_TRUE(warm.exe.has_value());
      EXPECT_EQ(execsim::run_executable(*uncached.exe, {}).stdout_text,
                execsim::run_executable(*warm.exe, {}).stdout_text);
    }
    std::remove(path.c_str());
  }
}

TEST(TuCache, FailedBuildWithLinkedTargetIsNeverPlanReconstructed) {
  // A multi-target project can fail AFTER linking an earlier target: the
  // BuildResult is ok=false but carries a live executable. Such builds
  // must never be served from a persisted plan (which cannot carry the
  // executable) — cold and warm build_repo stay bit-identical, exe
  // included.
  Repo repo;
  repo.write("CMakeLists.txt",
             "cmake_minimum_required(VERSION 3.16)\n"
             "project(multi LANGUAGES CXX)\n"
             "add_executable(good good.cpp)\n"
             "add_executable(bad bad.cpp)\n");
  repo.write("good.cpp", "int main() { return 0; }\n");
  repo.write("bad.cpp", "int main() { return undeclared_thing(); }\n");

  const auto cold = buildsim::build_repo(repo);
  ASSERT_FALSE(cold.ok);
  ASSERT_TRUE(cold.exe.has_value());  // the premise: failed, yet linked

  TuCompileCache cache;
  const auto cached = buildsim::build_repo(repo, "", &cache);
  const std::string path = "tu_cache_multi_target_test.json";
  ASSERT_TRUE(cache.save(path, 11));
  TuCompileCache loaded;
  ASSERT_TRUE(loaded.load(path, 11));
  const auto warm = buildsim::build_repo(repo, "", &loaded);
  EXPECT_EQ(loaded.plan_hits(), 0u);  // rebuilt, not reconstructed
  EXPECT_EQ(cold.ok, warm.ok);
  EXPECT_EQ(cold.log, warm.log);
  EXPECT_EQ(cold.exe.has_value(), warm.exe.has_value());
  std::remove(path.c_str());
}

TEST(TuCache, SeedCorpusStagedScoresBitIdentical) {
  // The end-to-end gate: one pair of the paper sweep, run (1) uncached,
  // (2) through a fresh three-layer ScoreCache, and (3) through a cache
  // whose TU layer alone was persisted and reloaded (score layer cold, so
  // Build stages actually consult the TU file — failed plans reconstruct,
  // successful builds recompile). All TaskResults, including per-stage
  // logs, must be bit-identical.
  const llm::Pair& pair = llm::all_pairs()[0];
  eval::HarnessConfig uncached;
  uncached.samples_per_task = 4;
  uncached.threads = 1;
  uncached.use_score_cache = false;
  const auto reference = eval::run_pair_sweep(pair, uncached);

  eval::ScoreCache cache;
  eval::HarnessConfig cached = uncached;
  cached.score_cache = &cache;
  const auto through_cache = eval::run_pair_sweep(pair, cached);
  EXPECT_EQ(reference, through_cache);
  EXPECT_GT(cache.tus().lookups(), 0u);
  EXPECT_LT(cache.tus().misses(), cache.tus().lookups())
      << "the dedupe must be real: TU compiles strictly fewer than "
         "lookups";

  const std::string path = "tu_cache_corpus_test.json";
  ASSERT_TRUE(cache.tus().save(path, eval::scoring_pipeline_hash()));
  eval::ScoreCache warm;  // score layer cold, TU layer from disk
  ASSERT_TRUE(warm.tus().load(path, eval::scoring_pipeline_hash()));
  eval::HarnessConfig warm_cfg = uncached;
  warm_cfg.score_cache = &warm;
  const auto through_file = eval::run_pair_sweep(pair, warm_cfg);
  EXPECT_EQ(reference, through_file);
  EXPECT_GT(warm.tus().plan_hits(), 0u)
      << "failed builds must reconstruct from persisted plans";
  std::remove(path.c_str());
}

// ------------------------------------------------------- persistence ----

TEST(TuCache, PersistRoundTripAndVersionMismatchColdStart) {
  TuCompileCache cache;
  const Repo good = two_tu_repo();
  const Repo bad = failing_makefile_repo();
  ASSERT_TRUE(buildsim::build_repo(good, "", &cache).ok);
  ASSERT_FALSE(buildsim::build_repo(bad, "", &cache).ok);
  EXPECT_EQ(cache.size(), 2u);        // a.cpp, b.cpp
  EXPECT_EQ(cache.plan_count(), 2u);  // one ok plan, one failed plan

  const std::string path = "tu_cache_roundtrip_test.json";
  ASSERT_TRUE(cache.save(path, 1234));

  TuCompileCache same_version;
  ASSERT_TRUE(same_version.load(path, 1234));
  EXPECT_EQ(same_version.size(), 2u);
  EXPECT_EQ(same_version.plan_count(), 2u);
  // Round trip is stable: saving the loaded cache reproduces the file.
  const std::string path2 = path + ".resaved";
  ASSERT_TRUE(same_version.save(path2, 1234));
  std::ifstream f1(path), f2(path2);
  std::stringstream s1, s2;
  s1 << f1.rdbuf();
  s2 << f2.rdbuf();
  EXPECT_EQ(s1.str(), s2.str());

  TuCompileCache other_version;
  EXPECT_FALSE(other_version.load(path, 999));  // stale pipeline
  EXPECT_EQ(other_version.size(), 0u);
  EXPECT_EQ(other_version.plan_count(), 0u);

  TuCompileCache missing;
  EXPECT_FALSE(missing.load("no_such_tu_cache.json", 1234));

  // A malformed file loads nothing.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"format\":\"pareval-tu-cache-v1\",";
  }
  TuCompileCache malformed;
  EXPECT_FALSE(malformed.load(path, 1234));
  EXPECT_EQ(malformed.size(), 0u);

  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(TuCache, JournalStoreRoundTripReconstructsFailedPlans) {
  const std::string dir =
      ::testing::TempDir() + "tucache_journal_roundtrip_store";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  cache::Store store(dir);
  ASSERT_TRUE(store.open());

  TuCompileCache cold;
  EXPECT_FALSE(cold.attach(store, 1234));  // empty store starts cold
  const Repo good = two_tu_repo();
  const Repo bad = failing_makefile_repo();
  ASSERT_TRUE(buildsim::build_repo(good, "", &cold).ok);
  ASSERT_FALSE(buildsim::build_repo(bad, "", &cold).ok);
  EXPECT_GT(cold.flush(), 0u);
  EXPECT_EQ(cold.flush(), 0u);  // idempotent: everything already published

  // Compaction must not change what a fresh reader reconstructs.
  ASSERT_TRUE(store.compact(TuCompileCache::kTuStream, 1234));
  ASSERT_TRUE(store.compact(TuCompileCache::kPlanStream, 1234));

  cache::Store reader(dir);
  ASSERT_TRUE(reader.open());
  TuCompileCache warm;
  EXPECT_TRUE(warm.attach(reader, 1234));
  EXPECT_EQ(warm.size(), 2u);        // a.cpp, b.cpp
  EXPECT_EQ(warm.plan_count(), 2u);  // one ok plan, one failed plan

  // The replayed failed plan short-circuits a rebuild of the broken repo.
  ASSERT_FALSE(buildsim::build_repo(bad, "", &warm).ok);
  EXPECT_EQ(warm.plan_hits(), 1u);

  // Journal replay and legacy files agree byte for byte.
  const std::string file_a = "tu_cache_journal_cold.json";
  const std::string file_b = "tu_cache_journal_warm.json";
  ASSERT_TRUE(cold.save(file_a, 1234));
  ASSERT_TRUE(warm.save(file_b, 1234));
  std::ifstream f1(file_a), f2(file_b);
  std::stringstream s1, s2;
  s1 << f1.rdbuf();
  s2 << f2.rdbuf();
  EXPECT_EQ(s1.str(), s2.str());

  TuCompileCache stale;
  EXPECT_FALSE(stale.attach(reader, 999));  // stale pipeline cold-starts
  EXPECT_EQ(stale.size(), 0u);
  EXPECT_EQ(stale.plan_count(), 0u);

  std::remove(file_a.c_str());
  std::remove(file_b.c_str());
  std::filesystem::remove_all(dir, ec);
}

TEST(TuCache, DeltaContainsOnlyFreshEntries) {
  TuCompileCache first;
  ASSERT_FALSE(buildsim::build_repo(failing_makefile_repo(), "", &first).ok);
  const std::string base = "tu_cache_delta_base.json";
  ASSERT_TRUE(first.save(base, 5));

  TuCompileCache second;
  ASSERT_TRUE(second.load(base, 5));
  ASSERT_TRUE(buildsim::build_repo(two_tu_repo(), "", &second).ok);
  std::size_t delta_entries = 0;
  const std::string delta = "tu_cache_delta_test.json";
  ASSERT_TRUE(second.save_delta(delta, 5, &delta_entries));
  // Only this run's work: 2 TUs + 1 plan; the loaded failed plan is not
  // re-shipped.
  EXPECT_EQ(delta_entries, 3u);

  // A delta file is itself a valid cache file.
  TuCompileCache merged;
  ASSERT_TRUE(merged.load(base, 5));
  ASSERT_TRUE(merged.load(delta, 5));
  EXPECT_EQ(merged.plan_count(), 2u);
  EXPECT_EQ(merged.size(), 2u);
  std::remove(base.c_str());
  std::remove(delta.c_str());
}

TEST(TuCache, CapacityBound) {
  TuCompileCache cache;
  cache.set_capacity(16);  // one entry per shard
  Repo repo;
  for (int i = 0; i < 64; ++i) {
    const std::string name = "f" + std::to_string(i) + ".cpp";
    repo.write(name, "int v" + std::to_string(i) + "() { return " +
                         std::to_string(i) + "; }\n");
  }
  for (int i = 0; i < 64; ++i) {
    compile(cache, repo, "f" + std::to_string(i) + ".cpp");
  }
  EXPECT_EQ(cache.misses(), 64u);
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(cache.size(), 0u);
}

TEST(TuCache, PlanCapacityBound) {
  // Plans respect the same capacity bound as TU entries — whether
  // recorded live, loaded from a file, or present when the bound shrinks.
  TuCompileCache cache;
  cache.set_capacity(16);
  buildsim::BuildResult failed;
  failed.ok = false;
  failed.log = "error: synthetic\n";
  for (std::uint64_t k = 1; k <= 64; ++k) {
    cache.record_plan(k, failed, {});
  }
  EXPECT_LE(cache.plan_count(), 16u);
  EXPECT_GT(cache.plan_count(), 0u);

  const std::string path = "tu_cache_plan_bound_test.json";
  TuCompileCache unbounded;
  for (std::uint64_t k = 1; k <= 64; ++k) {
    unbounded.record_plan(k, failed, {});
  }
  ASSERT_TRUE(unbounded.save(path, 3));
  TuCompileCache bounded;
  bounded.set_capacity(16);
  ASSERT_TRUE(bounded.load(path, 3));  // loaded plans are bounded too
  EXPECT_LE(bounded.plan_count(), 16u);

  TuCompileCache shrunk;
  ASSERT_TRUE(shrunk.load(path, 3));
  EXPECT_EQ(shrunk.plan_count(), 64u);
  shrunk.set_capacity(16);  // shrinking prunes existing plans
  EXPECT_LE(shrunk.plan_count(), 16u);
  std::remove(path.c_str());
}

// ------------------------------------------------------- concurrency ----

TEST(TuCache, ConcurrentCompileDeterministicAcrossThreadCounts) {
  // Serial reference: every build's log through a fresh cache.
  std::vector<Repo> repos;
  repos.push_back(two_tu_repo());
  repos.push_back(failing_tu_repo());
  repos.push_back(failing_makefile_repo());
  {
    Repo edited = two_tu_repo();
    edited.write("inc/deep.h", "#define DEEP_V 9\n");
    repos.push_back(edited);
  }
  std::vector<std::string> reference;
  for (const Repo& r : repos) reference.push_back(buildsim::build_repo(r).log);

  for (const unsigned threads : {2u, 8u}) {
    TuCompileCache shared;
    constexpr int kRounds = 8;
    std::vector<std::string> logs(repos.size() * kRounds);
    std::vector<std::thread> workers;
    const std::size_t per_thread =
        (logs.size() + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t begin = t * per_thread;
        const std::size_t end =
            std::min(logs.size(), begin + per_thread);
        for (std::size_t i = begin; i < end; ++i) {
          logs[i] =
              buildsim::build_repo(repos[i % repos.size()], "", &shared)
                  .log;
        }
      });
    }
    for (auto& w : workers) w.join();
    for (std::size_t i = 0; i < logs.size(); ++i) {
      EXPECT_EQ(logs[i], reference[i % repos.size()])
          << "thread count " << threads << ", unit " << i;
    }
    // Counter consistency on the shared cache (TSan guards the races).
    EXPECT_EQ(shared.lookups(),
              shared.hits() + shared.persisted_hits() + shared.misses());
    EXPECT_GT(shared.hits(), 0u);
  }
}
