// Sweep-service tests: protocol codec round trips for every message
// type, the FrameDecoder's fatal-on-damage semantics (the socket-side
// twist on the journal frame format), the submit codec's spec-hash
// tamper rejection, the JobQueue's scheduling/cancellation contract, and
// an in-process SweepServer end to end — two concurrent clients whose
// folded streams must be bit-identical to the batch
// run_shard/merge_shards path, warm cross-job cache reuse (zero builds
// and zero TU compiles on a resubmit), and the graceful drain.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.hpp"
#include "eval/shard.hpp"
#include "eval/suite.hpp"
#include "serve/client.hpp"
#include "serve/jobs.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace pe = pareval::eval;
namespace pv = pareval::serve;
namespace ps = pareval::support;
using ps::Json;

namespace {

/// One-cell, two-sample spec: the smallest job that still exercises the
/// full submit -> stream -> done -> fold path.
pe::SweepSpec tiny_spec() {
  pe::SweepSpec spec;
  spec.llms = {"o4-mini"};
  spec.pairs = {"cuda->omp_offload"};
  spec.apps = {"nanoXOR"};
  spec.techniques = {"non_agentic"};
  spec.samples_per_task = 2;
  spec.seed = 0x42e;
  return spec;
}

/// A few cells' worth of units, for scheduling and concurrency tests.
pe::SweepSpec small_spec() {
  pe::SweepSpec spec = tiny_spec();
  spec.apps = {"nanoXOR", "microXOR"};
  spec.techniques = {"non_agentic", "top_down"};
  return spec;
}

std::string temp_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The batch reference a server job must match: the whole spec as the
/// single shard of a 1-shard run, merged (exactly what the sweep_client
/// fold does on its end).
std::string batch_reference_dump(const pe::SweepSpec& spec) {
  const pe::Suite& suite = pe::Suite::paper();
  const pe::ShardResult shard = pe::run_shard(suite, spec, 0, 1);
  const auto tasks = pe::merge_shards(suite, spec, {shard});
  return pe::merged_sweep_json(suite, spec, 1, tasks).dump();
}

/// Round-trip `msg` through the wire framing and return the decoded
/// payload, asserting one clean frame.
Json wire_round_trip(const Json& msg) {
  pv::FrameDecoder decoder;
  decoder.feed(pv::frame_message(msg));
  auto out = decoder.next();
  EXPECT_TRUE(out.has_value());
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_FALSE(decoder.next().has_value());  // exactly one frame
  return out.value_or(Json());
}

}  // namespace

// --- message codecs ---------------------------------------------------------

TEST(ServeProtocol, HelloRoundTrip) {
  pv::HelloMsg in;
  in.pipeline = 0xdeadbeefcafe1070ull;
  pv::HelloMsg out;
  ASSERT_TRUE(pv::HelloMsg::decode(wire_round_trip(in.encode()), &out));
  EXPECT_EQ(out.server, in.server);
  EXPECT_EQ(out.protocol, pv::kProtocolVersion);
  EXPECT_EQ(out.pipeline, in.pipeline);
}

TEST(ServeProtocol, SubmitRoundTripPreservesSpecAndKnobs) {
  pv::SubmitRequest in;
  in.spec = small_spec();
  in.engine = pareval::minic::EngineKind::Vm;
  in.high_priority = true;
  in.keep_logs = false;
  pv::SubmitRequest out;
  ASSERT_TRUE(pv::SubmitRequest::decode(wire_round_trip(in.encode()), &out));
  EXPECT_EQ(out.spec, in.spec);
  EXPECT_EQ(out.engine, in.engine);
  EXPECT_TRUE(out.high_priority);
  EXPECT_FALSE(out.keep_logs);
}

TEST(ServeProtocol, SubmitRejectsSpecHashMismatch) {
  // Exactly like shard files: a submit whose embedded hash disagrees
  // with its spec is corrupt or tampered and must not be scheduled.
  Json j = pv::SubmitRequest{tiny_spec()}.encode();
  j.set("spec_hash", ps::u64_to_hex(0x1070));
  pv::SubmitRequest out;
  EXPECT_FALSE(pv::SubmitRequest::decode(j, &out));

  // ...and a tampered spec under the original hash is equally rejected.
  Json j2 = pv::SubmitRequest{tiny_spec()}.encode();
  pe::SweepSpec reseeded = tiny_spec();
  reseeded.seed ^= 1;
  j2.set("spec", pe::to_json(reseeded));
  EXPECT_FALSE(pv::SubmitRequest::decode(j2, &out));
}

TEST(ServeProtocol, SampleAndDoneRoundTrip) {
  // A real record (run, not hand-rolled) so the embedded SampleRun codec
  // is exercised too.
  const pe::Suite& suite = pe::Suite::paper();
  const pe::ShardResult shard = pe::run_shard(suite, tiny_spec(), 0, 1);
  ASSERT_FALSE(shard.records.empty());

  pv::SampleMsg sample_in;
  sample_in.job = 7;
  sample_in.record = shard.records.front();
  pv::SampleMsg sample_out;
  ASSERT_TRUE(
      pv::SampleMsg::decode(wire_round_trip(sample_in.encode()),
                            &sample_out));
  EXPECT_EQ(sample_out.job, 7);
  EXPECT_EQ(sample_out.record, sample_in.record);

  pv::JobDoneMsg done_in;
  done_in.job = 7;
  done_in.records = 2;
  done_in.cancelled = true;
  pv::JobDoneMsg done_out;
  ASSERT_TRUE(
      pv::JobDoneMsg::decode(wire_round_trip(done_in.encode()), &done_out));
  EXPECT_EQ(done_out.job, 7);
  EXPECT_EQ(done_out.records, 2);
  EXPECT_TRUE(done_out.cancelled);
}

TEST(ServeProtocol, ControlMessagesRoundTrip) {
  pv::SubmitAck ack{3, 52, 312};
  pv::SubmitAck ack_out;
  ASSERT_TRUE(pv::SubmitAck::decode(wire_round_trip(ack.encode()),
                                    &ack_out));
  EXPECT_EQ(ack_out.job, 3);
  EXPECT_EQ(ack_out.cells, 52);
  EXPECT_EQ(ack_out.units, 312);

  pv::StatusRequest status_req;
  ASSERT_TRUE(pv::StatusRequest::decode(wire_round_trip(status_req.encode()),
                                        &status_req));
  pv::StatusReply status_in;
  status_in.body = Json::object();
  status_in.body.set("draining", false);
  pv::StatusReply status_out;
  ASSERT_TRUE(pv::StatusReply::decode(wire_round_trip(status_in.encode()),
                                      &status_out));
  EXPECT_FALSE(status_out.body["draining"].as_bool());

  pv::CancelRequest cancel_req{11};
  ASSERT_TRUE(pv::CancelRequest::decode(wire_round_trip(cancel_req.encode()),
                                        &cancel_req));
  EXPECT_EQ(cancel_req.job, 11);
  pv::CancelReply cancel_in{11, true, 40};
  pv::CancelReply cancel_out;
  ASSERT_TRUE(pv::CancelReply::decode(wire_round_trip(cancel_in.encode()),
                                      &cancel_out));
  EXPECT_TRUE(cancel_out.found);
  EXPECT_EQ(cancel_out.skipped_units, 40);

  pv::FoldRequest fold_req{"/tmp/worker-store"};
  ASSERT_TRUE(pv::FoldRequest::decode(wire_round_trip(fold_req.encode()),
                                      &fold_req));
  EXPECT_EQ(fold_req.dir, "/tmp/worker-store");
  pv::FoldReply fold_in;
  fold_in.ok = true;
  fold_in.score_records = 9;
  fold_in.tu_records = 4;
  pv::FoldReply fold_out;
  ASSERT_TRUE(pv::FoldReply::decode(wire_round_trip(fold_in.encode()),
                                    &fold_out));
  EXPECT_TRUE(fold_out.ok);
  EXPECT_EQ(fold_out.score_records, 9);
  EXPECT_EQ(fold_out.tu_records, 4);

  pv::ShutdownRequest shutdown_req;
  ASSERT_TRUE(pv::ShutdownRequest::decode(
      wire_round_trip(shutdown_req.encode()), &shutdown_req));
  pv::ShutdownReply shutdown_reply;
  ASSERT_TRUE(pv::ShutdownReply::decode(
      wire_round_trip(shutdown_reply.encode()), &shutdown_reply));
  EXPECT_TRUE(shutdown_reply.draining);

  pv::ErrorMsg error_in{"server draining"};
  pv::ErrorMsg error_out;
  ASSERT_TRUE(pv::ErrorMsg::decode(wire_round_trip(error_in.encode()),
                                   &error_out));
  EXPECT_EQ(error_out.message, "server draining");

  // Wrong-type dispatch: each decoder refuses another type's frame.
  EXPECT_FALSE(pv::CancelReply::decode(fold_in.encode(), &cancel_out));
  EXPECT_EQ(pv::message_type(fold_in.encode()), "fold_reply");
}

// --- FrameDecoder -----------------------------------------------------------

TEST(ServeFrames, SplitFeedsAcrossFrameBoundariesDecode) {
  const std::string wire = pv::frame_message(pv::StatusRequest().encode()) +
                           pv::frame_message(pv::ShutdownRequest().encode());
  pv::FrameDecoder decoder;
  // Byte-at-a-time: a truncated buffer is "need more bytes", never
  // corruption.
  std::size_t decoded = 0;
  for (const char c : wire) {
    decoder.feed(std::string_view(&c, 1));
    while (decoder.next().has_value()) {
      ++decoded;
      EXPECT_FALSE(decoder.corrupt());
    }
    EXPECT_FALSE(decoder.corrupt());
  }
  EXPECT_EQ(decoded, 2u);
}

TEST(ServeFrames, CorruptPayloadIsPermanentlyFatal) {
  std::string wire = pv::frame_message(pv::StatusRequest().encode());
  wire[wire.size() - 3] ^= 0x20;  // flip a payload byte: CRC now lies
  pv::FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_EQ(decoder.corrupt_reason(), "frame CRC mismatch");

  // Unlike the journal reader (which skips a bad record and keeps
  // replaying), the socket decoder never recovers: feeding a pristine
  // frame after the damage still yields nothing.
  decoder.feed(pv::frame_message(pv::StatusRequest().encode()));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
}

TEST(ServeFrames, BadMagicAndOversizedLengthAreFatal) {
  pv::FrameDecoder bad_magic;
  std::string wire = pv::frame_message(pv::StatusRequest().encode());
  wire[0] = 'X';
  bad_magic.feed(wire);
  EXPECT_FALSE(bad_magic.next().has_value());
  EXPECT_TRUE(bad_magic.corrupt());

  pv::FrameDecoder oversized;
  // A syntactically valid header whose length exceeds the frame cap must
  // be rejected before any allocation.
  oversized.feed("PVJ1 ffffffff 00000000\n");
  EXPECT_FALSE(oversized.next().has_value());
  EXPECT_TRUE(oversized.corrupt());

  pv::FrameDecoder not_json;
  not_json.feed(pareval::cache::frame_record("not json"));
  EXPECT_FALSE(not_json.next().has_value());
  EXPECT_TRUE(not_json.corrupt());
}

// --- JobQueue ---------------------------------------------------------------

TEST(ServeJobs, StreamsEveryUnitThenFiresDoneOnce) {
  const pe::Suite& suite = pe::Suite::paper();
  pv::JobQueue queue(suite);
  const pe::SweepSpec spec = small_spec();
  const std::size_t expected_units =
      pe::sweep_cells(suite, spec).size() *
      static_cast<std::size_t>(spec.samples_per_task);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<pe::SampleRecord> streamed;
  int done_job = 0;
  int done_calls = 0;
  bool done_cancelled = true;
  std::size_t done_records = 0;
  const int id = queue.submit(
      spec, pe::HarnessConfig(), /*high_priority=*/false,
      [&](int job, const pe::SampleRecord& r) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_GT(job, 0);
        streamed.push_back(r);
      },
      [&](int job, bool cancelled, std::size_t records) {
        std::lock_guard<std::mutex> lock(mu);
        done_job = job;
        ++done_calls;
        done_cancelled = cancelled;
        done_records = records;
        cv.notify_all();
      });
  ASSERT_GT(id, 0);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done_calls > 0; });
  }
  queue.wait_idle();
  EXPECT_EQ(done_job, id);
  EXPECT_EQ(done_calls, 1);
  EXPECT_FALSE(done_cancelled);
  EXPECT_EQ(done_records, expected_units);
  EXPECT_EQ(streamed.size(), expected_units);

  // The streamed records ARE the 1-shard batch result, merely unordered.
  const auto tasks = pv::fold_records(suite, spec,
                                      pareval::minic::EngineKind::Interp,
                                      streamed);
  const auto reference = pe::merge_shards(
      suite, spec, {pe::run_shard(suite, spec, 0, 1)});
  EXPECT_EQ(tasks, reference);

  const auto jobs = queue.jobs();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, pv::JobState::Done);
  EXPECT_EQ(jobs[0].completed_units, expected_units);
  EXPECT_EQ(jobs[0].skipped_units, 0u);
}

TEST(ServeJobs, CancelSkipsQueuedUnitsAndSettlesTheJob) {
  const pe::Suite& suite = pe::Suite::paper();
  // One unit in flight at a time, so a prompt cancel finds nearly the
  // whole queue undispatched.
  pv::JobQueue queue(suite, /*max_inflight=*/1);
  pe::SweepSpec spec = small_spec();
  spec.samples_per_task = 6;  // 4 cells x 6 samples = 24 units

  std::mutex mu;
  std::condition_variable cv;
  bool cancel_issued = false;
  bool done_cancelled = false;
  int done_calls = 0;
  const int id = queue.submit(
      spec, pe::HarnessConfig(), /*high_priority=*/false,
      // Hold the first completed unit hostage until the cancel has been
      // issued (on_sample runs outside the queue lock, so cancel cannot
      // deadlock against it). Without this gate a fast execute stage can
      // drain all 24 units before the main thread reaches cancel().
      [&](int, const pe::SampleRecord&) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return cancel_issued; });
      },
      [&](int, bool cancelled, std::size_t) {
        std::lock_guard<std::mutex> lock(mu);
        done_cancelled = cancelled;
        ++done_calls;
        cv.notify_all();
      });
  std::size_t skipped = 0;
  const bool cancel_ok = queue.cancel(id, &skipped);
  {
    std::lock_guard<std::mutex> lock(mu);
    cancel_issued = true;
  }
  cv.notify_all();
  ASSERT_TRUE(cancel_ok);
  EXPECT_GE(skipped, 1u);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done_calls > 0; });
  }
  queue.wait_idle();
  EXPECT_EQ(done_calls, 1);
  EXPECT_TRUE(done_cancelled);

  const auto jobs = queue.jobs();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, pv::JobState::Cancelled);
  // At least the units the cancel struck from the queue were skipped; a
  // dispatched-but-unstarted unit also skips itself when it observes the
  // cancelled state, so the job total may exceed the struck count.
  EXPECT_GE(jobs[0].skipped_units, skipped);
  EXPECT_EQ(jobs[0].completed_units + jobs[0].skipped_units,
            jobs[0].total_units);

  // A settled job cannot be cancelled again.
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(9999));
}

// --- SweepServer end to end -------------------------------------------------

namespace {

struct RunningServer {
  explicit RunningServer(const std::string& name,
                         const std::string& cache_dir = "") {
    pv::SweepServer::Config config;
    config.endpoint = "unix:" + temp_dir((name + ".sock").c_str());
    config.cache_dir = cache_dir;
    server = std::make_unique<pv::SweepServer>(config,
                                               pe::Suite::paper());
    std::string error;
    started = server->start(&error);
    EXPECT_TRUE(started) << error;
    endpoint = config.endpoint;
  }
  ~RunningServer() {
    if (started) server->stop();
  }

  std::unique_ptr<pv::SweepServer> server;
  std::string endpoint;
  bool started = false;
};

}  // namespace

TEST(ServeServer, TwoConcurrentClientsFoldBitIdenticalToBatch) {
  RunningServer rs("serve_e2e");
  const pe::SweepSpec spec = small_spec();
  const std::string reference = batch_reference_dump(spec);

  auto run_client = [&](std::string* dump, std::string* error) {
    pv::Client client;
    if (!client.connect(rs.endpoint, error)) return;
    EXPECT_EQ(client.hello().protocol, pv::kProtocolVersion);
    pv::Client::JobOutcome outcome;
    if (!client.submit(spec, {}, &outcome, error)) return;
    EXPECT_FALSE(outcome.cancelled);
    EXPECT_EQ(outcome.records.size(),
              static_cast<std::size_t>(outcome.units));
    const pe::Suite& suite = pe::Suite::paper();
    const auto tasks =
        pv::fold_records(suite, spec, pareval::minic::EngineKind::Interp,
                         std::move(outcome.records));
    *dump = pe::merged_sweep_json(suite, spec, 1, tasks).dump();
  };

  std::string dump_a, dump_b, error_a, error_b;
  std::thread ta([&] { run_client(&dump_a, &error_a); });
  std::thread tb([&] { run_client(&dump_b, &error_b); });
  ta.join();
  tb.join();
  ASSERT_TRUE(error_a.empty()) << error_a;
  ASSERT_TRUE(error_b.empty()) << error_b;
  // Both concurrent streams fold to the byte-identical batch document.
  EXPECT_EQ(dump_a, reference);
  EXPECT_EQ(dump_b, reference);
}

TEST(ServeServer, WarmResubmitPerformsZeroBuildsAndZeroTuCompiles) {
  RunningServer rs("serve_warm", temp_dir("serve_warm_cache"));
  const pe::SweepSpec spec = tiny_spec();

  pv::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(rs.endpoint, &error)) << error;
  pv::Client::JobOutcome first;
  ASSERT_TRUE(client.submit(spec, {}, &first, &error)) << error;

  const pe::ScoreCache& cache = rs.server->cache();
  const std::size_t builds_after_first = cache.builds().misses();
  const std::size_t tus_after_first = cache.tus().misses();
  const std::size_t scores_after_first = cache.misses();
  EXPECT_GT(builds_after_first, 0u);

  // Same spec, same connection: the resident caches must absorb all of
  // it — the daemon's whole reason to exist.
  pv::Client::JobOutcome second;
  ASSERT_TRUE(client.submit(spec, {}, &second, &error)) << error;
  EXPECT_EQ(cache.builds().misses(), builds_after_first);
  EXPECT_EQ(cache.tus().misses(), tus_after_first);
  EXPECT_EQ(cache.misses(), scores_after_first);

  // And the streams are identical run to run.
  ASSERT_EQ(first.records.size(), second.records.size());
  const pe::Suite& suite = pe::Suite::paper();
  EXPECT_EQ(pv::fold_records(suite, spec,
                             pareval::minic::EngineKind::Interp,
                             std::move(first.records)),
            pv::fold_records(suite, spec,
                             pareval::minic::EngineKind::Interp,
                             std::move(second.records)));
}

TEST(ServeServer, StatusReportsQueueJobsAndCacheLayers) {
  RunningServer rs("serve_status");
  pv::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(rs.endpoint, &error)) << error;

  pv::Client::JobOutcome outcome;
  ASSERT_TRUE(client.submit(tiny_spec(), {}, &outcome, &error)) << error;

  Json body;
  ASSERT_TRUE(client.status(&body, &error)) << error;
  EXPECT_EQ(body["endpoint"].as_string(), rs.endpoint);
  EXPECT_FALSE(body["draining"].as_bool());
  EXPECT_EQ(body["protocol"].as_int(), pv::kProtocolVersion);
  EXPECT_EQ(body["queue"]["active_jobs"].as_int(), 0);
  ASSERT_EQ(body["jobs"].size(), 1u);
  EXPECT_EQ(body["jobs"].at(0)["state"].as_string(), "done");
  EXPECT_EQ(body["jobs"].at(0)["completed_units"].as_int(), outcome.units);
  // All three layers report; the tiny job certainly built something.
  EXPECT_GT(body["cache"]["builds"]["misses"].as_int(), 0);
  EXPECT_GT(body["cache"]["score"]["entries"].as_int(), 0);
  EXPECT_TRUE(body["cache"]["tu"].is_object());
}

TEST(ServeServer, MalformedSubmitGetsErrorReplyAndConnectionSurvives) {
  RunningServer rs("serve_badsubmit");
  pv::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(rs.endpoint, &error)) << error;

  // An unknown app name passes the codec but fails suite validation;
  // the server must reply with an error, not drop the connection.
  pe::SweepSpec bogus = tiny_spec();
  bogus.apps = {"no-such-app"};
  pv::Client::JobOutcome outcome;
  EXPECT_FALSE(client.submit(bogus, {}, &outcome, &error));
  EXPECT_FALSE(error.empty());

  // The connection is still usable for a well-formed job.
  error.clear();
  EXPECT_TRUE(client.submit(tiny_spec(), {}, &outcome, &error)) << error;
}

TEST(ServeServer, ShutdownDrainsAndRejectsNewSubmits) {
  RunningServer rs("serve_drain");
  pv::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(rs.endpoint, &error)) << error;
  ASSERT_TRUE(client.shutdown(&error)) << error;
  EXPECT_TRUE(rs.server->draining());

  // A submit into a draining server is rejected with an error reply.
  pv::Client::JobOutcome outcome;
  EXPECT_FALSE(client.submit(tiny_spec(), {}, &outcome, &error));
  EXPECT_FALSE(error.empty());

  rs.server->wait();  // drain completes with no active jobs
}
