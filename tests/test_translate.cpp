// Translation-engine tests. The reference transpilers must produce
// *correct* target-model repositories: they build under the simulated
// toolchains, run on the device, and match the app's golden outputs. The
// defect mutators must then create exactly the failure class they claim.

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "buildsim/builder.hpp"
#include "translate/mutate.hpp"
#include "translate/transpile.hpp"

namespace pa = pareval::apps;
namespace bs = pareval::buildsim;
namespace px = pareval::xlate;
using pareval::execsim::run_executable;
using pareval::minic::DiagCategory;

namespace {

struct PairCase {
  std::string app;
  pa::Model from;
  pa::Model to;
  bool expect_runnable;  // reference translation should pass validation
};

// The benchmark's sixteen translation tasks (§5.2). XSBench->Kokkos is the
// one task whose naive translation cannot work in our substrate (pointer
// arithmetic into Views); the paper's Figure 2 shows zero successes there
// for every technique, so the reference translation is only required to
// exist, not to pass.
std::vector<PairCase> pair_cases() {
  using M = pa::Model;
  return {
      {"nanoXOR", M::Cuda, M::OmpOffload, true},
      {"microXORh", M::Cuda, M::OmpOffload, true},
      {"microXOR", M::Cuda, M::OmpOffload, true},
      {"SimpleMOC-kernel", M::Cuda, M::OmpOffload, true},
      {"XSBench", M::Cuda, M::OmpOffload, true},
      {"llm.c", M::Cuda, M::OmpOffload, true},
      {"nanoXOR", M::Cuda, M::Kokkos, true},
      {"microXORh", M::Cuda, M::Kokkos, true},
      {"microXOR", M::Cuda, M::Kokkos, true},
      {"SimpleMOC-kernel", M::Cuda, M::Kokkos, true},
      {"XSBench", M::Cuda, M::Kokkos, false},
      {"llm.c", M::Cuda, M::Kokkos, true},
      {"nanoXOR", M::OmpThreads, M::OmpOffload, true},
      {"microXORh", M::OmpThreads, M::OmpOffload, true},
      {"microXOR", M::OmpThreads, M::OmpOffload, true},
      {"XSBench", M::OmpThreads, M::OmpOffload, true},
  };
}

std::string pair_name(const testing::TestParamInfo<PairCase>& info) {
  std::string name = info.param.app + "_" +
                     pa::model_name(info.param.from) + "_to_" +
                     pa::model_name(info.param.to);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

bool has_category(const pareval::minic::DiagBag& bag, DiagCategory cat) {
  for (const auto& d : bag.all()) {
    if (d.category == cat &&
        d.severity == pareval::minic::Severity::Error) {
      return true;
    }
  }
  return false;
}

}  // namespace

class TranslationPair : public testing::TestWithParam<PairCase> {};

TEST_P(TranslationPair, ReferenceTranslationIsCorrect) {
  const PairCase& pc = GetParam();
  const pa::AppSpec* app = pa::find_app(pc.app);
  ASSERT_NE(app, nullptr);

  px::TranspileLog log;
  const pareval::vfs::Repo translated =
      px::transpile_repo(*app, pc.from, pc.to, log);

  // Structural checks always apply.
  EXPECT_TRUE(translated.exists(pc.to == pa::Model::Kokkos
                                    ? "CMakeLists.txt"
                                    : "Makefile"));
  for (const auto& path : translated.paths()) {
    EXPECT_FALSE(path.ends_with(".cu")) << path;
    EXPECT_FALSE(path.ends_with(".cuh")) << path;
  }

  if (!pc.expect_runnable) return;

  const auto build = bs::build_repo(translated);
  ASSERT_TRUE(build.ok) << build.log;
  for (const auto& tc : app->tests) {
    const auto run = run_executable(*build.exe, tc.args);
    ASSERT_TRUE(run.ok) << run.stderr_text << "\n" << build.log;
    EXPECT_TRUE(
        pa::outputs_match(run.stdout_text, app->golden(tc), app->tolerance))
        << "got:  " << run.stdout_text << "want: " << app->golden(tc);
    EXPECT_GE(run.stats.device_kernel_launches, 1)
        << "translation did not execute on the device";
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, TranslationPair,
                         testing::ValuesIn(pair_cases()), pair_name);

// ----------------------------------------------------------- mutators ---

namespace {

pareval::vfs::Repo translated_nanoxor_omp() {
  px::TranspileLog log;
  return px::transpile_repo(*pa::find_app("nanoXOR"), pa::Model::Cuda,
                            pa::Model::OmpOffload, log);
}

pareval::vfs::Repo translated_nanoxor_kokkos() {
  px::TranspileLog log;
  return px::transpile_repo(*pa::find_app("nanoXOR"), pa::Model::Cuda,
                            pa::Model::Kokkos, log);
}

pareval::vfs::Repo translated_microxor_omp() {
  px::TranspileLog log;
  return px::transpile_repo(*pa::find_app("microXOR"), pa::Model::Cuda,
                            pa::Model::OmpOffload, log);
}

}  // namespace

TEST(Mutators, MakefileSyntaxBreaksBuildAsItsCategory) {
  auto repo = translated_nanoxor_omp();
  pareval::support::Rng rng(1);
  const auto outcome =
      px::inject_defect(repo, px::DefectKind::MakefileSyntax, rng);
  ASSERT_TRUE(outcome.applied) << outcome.description;
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok);
  EXPECT_TRUE(has_category(build.diags, DiagCategory::MakefileSyntax));
}

TEST(Mutators, MissingBuildTarget) {
  auto repo = translated_nanoxor_omp();
  pareval::support::Rng rng(2);
  ASSERT_TRUE(
      px::inject_defect(repo, px::DefectKind::MissingBuildTarget, rng)
          .applied);
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok);
  EXPECT_TRUE(has_category(build.diags, DiagCategory::MissingBuildTarget));
}

TEST(Mutators, CMakeConfigError) {
  auto repo = translated_nanoxor_kokkos();
  pareval::support::Rng rng(3);
  ASSERT_TRUE(
      px::inject_defect(repo, px::DefectKind::CMakeConfig, rng).applied);
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok);
  EXPECT_TRUE(has_category(build.diags, DiagCategory::CMakeConfig));
}

TEST(Mutators, InvalidCompilerFlag) {
  auto repo = translated_nanoxor_omp();
  pareval::support::Rng rng(4);
  ASSERT_TRUE(
      px::inject_defect(repo, px::DefectKind::InvalidFlag, rng).applied);
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok);
  EXPECT_TRUE(has_category(build.diags, DiagCategory::InvalidCompilerFlag));
}

TEST(Mutators, MissingHeader) {
  auto repo = translated_microxor_omp();
  pareval::support::Rng rng(5);
  ASSERT_TRUE(
      px::inject_defect(repo, px::DefectKind::MissingHeader, rng).applied);
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok);
  EXPECT_TRUE(has_category(build.diags, DiagCategory::MissingHeader));
}

TEST(Mutators, CodeSyntax) {
  auto repo = translated_nanoxor_omp();
  pareval::support::Rng rng(6);
  ASSERT_TRUE(
      px::inject_defect(repo, px::DefectKind::CodeSyntax, rng).applied);
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok);
  EXPECT_TRUE(has_category(build.diags, DiagCategory::CodeSyntax));
}

TEST(Mutators, UndeclaredIdentifierCrossFile) {
  auto repo = translated_microxor_omp();
  pareval::support::Rng rng(7);
  const auto outcome =
      px::inject_defect(repo, px::DefectKind::UndeclaredId, rng);
  ASSERT_TRUE(outcome.applied) << outcome.description;
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok) << outcome.description;
  EXPECT_TRUE(has_category(build.diags, DiagCategory::UndeclaredIdentifier) ||
              has_category(build.diags, DiagCategory::LinkError))
      << build.log;
}

TEST(Mutators, ArgMismatch) {
  auto repo = translated_microxor_omp();
  pareval::support::Rng rng(8);
  const auto outcome =
      px::inject_defect(repo, px::DefectKind::ArgMismatch, rng);
  ASSERT_TRUE(outcome.applied) << outcome.description;
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok) << outcome.description;
  EXPECT_TRUE(has_category(build.diags, DiagCategory::ArgTypeMismatch))
      << build.log;
}

TEST(Mutators, OmpInvalidDirective) {
  auto repo = translated_nanoxor_omp();
  pareval::support::Rng rng(9);
  ASSERT_TRUE(
      px::inject_defect(repo, px::DefectKind::OmpInvalid, rng).applied);
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok);
  EXPECT_TRUE(has_category(build.diags, DiagCategory::OmpInvalidDirective))
      << build.log;
}

TEST(Mutators, LinkError) {
  auto repo = translated_microxor_omp();
  pareval::support::Rng rng(10);
  const auto outcome =
      px::inject_defect(repo, px::DefectKind::LinkError, rng);
  ASSERT_TRUE(outcome.applied) << outcome.description;
  const auto build = bs::build_repo(repo);
  EXPECT_FALSE(build.ok) << outcome.description;
  EXPECT_TRUE(has_category(build.diags, DiagCategory::LinkError))
      << build.log;
}

TEST(Mutators, SemanticDefectBuildsButFailsValidation) {
  auto repo = translated_nanoxor_omp();
  pareval::support::Rng rng(11);
  const auto outcome =
      px::inject_defect(repo, px::DefectKind::Semantic, rng);
  ASSERT_TRUE(outcome.applied) << outcome.description;
  const auto build = bs::build_repo(repo);
  ASSERT_TRUE(build.ok) << outcome.description << "\n" << build.log;
  const pa::AppSpec* app = pa::find_app("nanoXOR");
  const auto run = run_executable(*build.exe, app->tests[0].args);
  const bool passes =
      run.ok &&
      pa::outputs_match(run.stdout_text, app->golden(app->tests[0]),
                        app->tolerance) &&
      run.stats.device_kernel_launches >= 1;
  EXPECT_FALSE(passes) << outcome.description;
}

TEST(Mutators, BuildFileDefectsAreHiddenByCodeOnlyMode) {
  // Code-only scoring swaps in the ground-truth build file: a build-file
  // defect must vanish, a source defect must not.
  const pa::AppSpec* app = pa::find_app("nanoXOR");
  auto repo = translated_nanoxor_omp();
  pareval::support::Rng rng(12);
  ASSERT_TRUE(
      px::inject_defect(repo, px::DefectKind::InvalidFlag, rng).applied);
  EXPECT_FALSE(bs::build_repo(repo).ok);
  // Swap in ground truth (what the harness's Code-only mode does).
  for (const auto& f :
       app->ground_truth_builds.at(pa::Model::OmpOffload).files()) {
    repo.write(f.path, f.content);
  }
  EXPECT_TRUE(bs::build_repo(repo).ok);
}

TEST(Mutators, EveryKindHasANameAndOrder) {
  EXPECT_EQ(px::all_defect_kinds().size(), 11u);
  for (const auto k : px::all_defect_kinds()) {
    EXPECT_NE(std::string(px::defect_name(k)), "?");
  }
}
