// Tests for the Suite/SweepSpec layer: registry-driven cell enumeration
// matching the legacy paper matrix, spec JSON round-trips and the
// stability/order-insensitivity of spec_hash, spec-hash enforcement in
// merge_shards and the shard-file parser, and bit-identical custom-suite
// sweeps across thread counts and a 3-way shard split.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "apps/xor_common.hpp"
#include "eval/report.hpp"
#include "eval/shard.hpp"
#include "support/par.hpp"
#include "support/strings.hpp"

namespace pe = pareval::eval;
namespace ps = pareval::support;
using pareval::apps::Model;
using pareval::llm::Pair;
using pareval::llm::Technique;

namespace {

pe::SweepSpec small_paper_spec(int samples = 2) {
  pe::SweepSpec spec = pe::SweepSpec::paper();
  spec.samples_per_task = samples;
  return spec;
}

/// The custom suite of examples/custom_suite.cpp, miniaturized: one extra
/// app (an OMP-threads/CUDA clone of the XOR stencil), one custom LLM with
/// profile-wide capability scores, and the reverse OMP->CUDA pair.
pe::Suite custom_suite() {
  pareval::apps::AppSpec pico;
  pico.name = "picoXOR-test";
  pico.description = "suite-registration test app";
  pareval::apps::xor_fill_common(pico, "picoXOR-test", {"src/main.cpp"},
                                 {"src/main.cpp"});
  pareval::vfs::Repo omp;
  omp.write("Makefile",
            "CXX = g++\nCXXFLAGS = -O2 -fopenmp\n\nall: picoXOR-test\n\n"
            "picoXOR-test: src/main.cpp\n"
            "\t$(CXX) $(CXXFLAGS) src/main.cpp -o picoXOR-test\n\n"
            "clean:\n\trm -f picoXOR-test\n");
  omp.write("src/main.cpp",
            pareval::apps::xor_omp_main("", /*kernel_inline=*/true));
  pico.repos[Model::OmpThreads] = std::move(omp);

  pareval::llm::LlmProfile tabby;
  tabby.name = "tabby-test";
  tabby.context_tokens = 200000;
  tabby.max_output_tokens = 20000;

  pe::Suite suite = pe::Suite::paper();
  suite.add_app(std::move(pico))
      .add_profile(tabby)
      .add_pair({Model::OmpThreads, Model::Cuda})
      .set_profile_scores("tabby-test", {0.9, 0.7, 0.8, 0.6});
  return suite;
}

pe::SweepSpec custom_spec() {
  pe::SweepSpec spec;
  spec.llms = {"tabby-test"};
  spec.pairs = {pareval::llm::pair_key({Model::OmpThreads, Model::Cuda})};
  spec.techniques = {
      pareval::llm::technique_key(Technique::NonAgentic),
      pareval::llm::technique_key(Technique::TopDown)};
  spec.samples_per_task = 3;
  spec.seed = 99;
  return spec;
}

}  // namespace

// ------------------------------------------------------------ registries --

TEST(Suite, PaperRegistriesMatchGlobalSets) {
  const pe::Suite& suite = pe::Suite::paper();
  EXPECT_EQ(suite.apps(), pareval::apps::all_apps());
  ASSERT_EQ(suite.profiles().size(), pareval::llm::all_profiles().size());
  for (std::size_t i = 0; i < suite.profiles().size(); ++i) {
    EXPECT_EQ(*suite.profiles()[i], pareval::llm::all_profiles()[i]);
  }
  EXPECT_EQ(suite.pairs(), pareval::llm::all_pairs());
  EXPECT_EQ(suite.techniques().size(), 3u);
  EXPECT_NE(suite.find_app("XSBench"), nullptr);
  EXPECT_NE(suite.find_profile("o4-mini"), nullptr);
  EXPECT_EQ(suite.find_app("no-such-app"), nullptr);
}

TEST(Suite, PaperEnumerationMatchesLegacySweepCells) {
  // The registry + default-spec enumeration is the legacy per-pair cell
  // list, cell for cell — the invariant that keeps sharding and the
  // figure pipeline bit-identical through the redesign.
  for (const Pair& pair : pareval::llm::all_pairs()) {
    const auto cells = pe::sweep_cells(pair);
    ASSERT_FALSE(cells.empty());
    pe::SweepSpec spec = pe::SweepSpec::paper();
    spec.pairs = {pareval::llm::pair_key(pair)};
    const auto spec_cells = pe::sweep_cells(pe::Suite::paper(), spec);
    ASSERT_EQ(spec_cells.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(spec_cells[i].app, cells[i].app);
      EXPECT_EQ(spec_cells[i].technique, cells[i].technique);
      EXPECT_EQ(spec_cells[i].profile, cells[i].profile);
      EXPECT_EQ(spec_cells[i].pair, pair);
    }
  }
}

TEST(Suite, CalibrationOverridePrecedence) {
  pe::Suite suite = custom_suite();
  const Pair reverse{Model::OmpThreads, Model::Cuda};
  // Profile-wide default applies to any cell of the custom LLM...
  auto wide = suite.calibration("tabby-test", Technique::TopDown, reverse,
                                "nanoXOR");
  ASSERT_TRUE(wide.has_value());
  EXPECT_DOUBLE_EQ(wide->code_build, 0.9);
  // ...an exact-cell override wins over it...
  suite.set_cell_scores("tabby-test", Technique::TopDown, reverse,
                        "nanoXOR", {1, 1, 1, 1});
  auto exact = suite.calibration("tabby-test", Technique::TopDown, reverse,
                                 "nanoXOR");
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(exact->code_build, 1.0);
  // ...and unknown LLMs still fall back to the paper tables.
  EXPECT_FALSE(suite.calibration("no-such-model", Technique::NonAgentic,
                                 pareval::llm::all_pairs()[0], "nanoXOR")
                   .has_value());
  EXPECT_TRUE(suite.calibration("o4-mini", Technique::NonAgentic,
                                pareval::llm::all_pairs()[0], "nanoXOR")
                  .has_value());
}

// ------------------------------------------------------------------ spec --

TEST(SweepSpec, JsonRoundTrip) {
  pe::SweepSpec spec;
  spec.llms = {"o4-mini", "gpt-4o-mini"};
  spec.pairs = {"cuda->kokkos"};
  spec.apps = {"nanoXOR", "XSBench"};
  spec.techniques = {"non_agentic"};
  spec.samples_per_task = 7;
  spec.seed = 0xdeadbeefcafeULL;
  pe::TechniqueGate gate;
  gate.technique = "swe_agent";
  gate.llms = {"gpt-4o-mini"};
  gate.pairs = {"cuda->kokkos"};
  gate.apps = {"nanoXOR"};
  spec.gates.push_back(gate);

  // Through the full text round trip, as the --spec tools consume it.
  const std::string text = pe::spec_file_text(spec);
  const auto parsed = ps::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  pe::SweepSpec back;
  ASSERT_TRUE(pe::from_json(*parsed, &back));
  EXPECT_EQ(back, spec);
  EXPECT_EQ(pe::spec_hash(back), pe::spec_hash(spec));
}

TEST(SweepSpec, AcceptsMinimalHandWrittenFiles) {
  // The natural hand-authored form: numeric seed, omitted lists/gates.
  const auto j = ps::Json::parse(
      "{\"format\":\"pareval-sweep-spec\",\"llms\":[\"o4-mini\"],"
      "\"seed\":1070}");
  ASSERT_TRUE(j.has_value());
  pe::SweepSpec spec;
  ASSERT_TRUE(pe::from_json(*j, &spec));
  EXPECT_EQ(spec.llms, std::vector<std::string>{"o4-mini"});
  EXPECT_TRUE(spec.pairs.empty());     // omitted = all
  EXPECT_TRUE(spec.gates.empty());     // omitted = none
  EXPECT_EQ(spec.seed, 1070u);         // numeric form
  EXPECT_EQ(spec.samples_per_task, pe::SweepSpec{}.samples_per_task);
}

TEST(Suite, ReRegistrationReplacesInPlace) {
  // "Copy paper(), re-register a tweaked profile" must override, not
  // shadow: the entry keeps its canonical position and stays unique.
  pe::Suite suite = pe::Suite::paper();
  const std::size_t apps = suite.apps().size();
  const std::size_t profiles = suite.profiles().size();

  pareval::llm::LlmProfile tweaked = *suite.find_profile("gpt-4o-mini");
  tweaked.context_tokens = 999;
  suite.add_profile(tweaked);
  EXPECT_EQ(suite.profiles().size(), profiles);
  EXPECT_EQ(suite.profiles()[1]->name, "gpt-4o-mini");  // position kept
  EXPECT_EQ(suite.find_profile("gpt-4o-mini")->context_tokens, 999);

  suite.add_app(pareval::apps::all_apps()[0]);  // duplicate app pointer
  EXPECT_EQ(suite.apps().size(), apps);
  suite.add_pair(pareval::llm::all_pairs()[0]);  // duplicate pair
  EXPECT_EQ(suite.pairs().size(), pareval::llm::all_pairs().size());
  suite.add_technique(Technique::TopDown);  // duplicate technique
  EXPECT_EQ(suite.techniques().size(), 3u);
}

TEST(SweepSpec, FromJsonRejectsMalformedInput) {
  pe::SweepSpec spec;
  EXPECT_FALSE(pe::from_json(ps::Json("nope"), &spec));
  EXPECT_FALSE(
      pe::from_json(*ps::Json::parse("{\"format\":\"other\"}"), &spec));
  auto j = pe::to_json(pe::SweepSpec::paper());
  j.set("samples_per_task", "not a number");
  EXPECT_FALSE(pe::from_json(j, &spec));
}

TEST(SweepSpec, HashIsStableAndOrderInsensitive) {
  // Golden value: the paper spec's hash is part of the on-disk contract
  // (shard files embed it); changing the canonicalization or the spec
  // fields is a format break and must be deliberate.
  EXPECT_EQ(ps::u64_to_hex(pe::spec_hash(pe::SweepSpec::paper())),
            "3767015b8e531fe2");

  pe::SweepSpec a = pe::SweepSpec::paper();
  a.llms = {"o4-mini", "gpt-4o-mini"};
  pe::SweepSpec b = pe::SweepSpec::paper();
  b.llms = {"gpt-4o-mini", "o4-mini", "gpt-4o-mini"};  // reordered + dup
  EXPECT_EQ(pe::spec_hash(a), pe::spec_hash(b));  // same selection

  pe::SweepSpec c = pe::SweepSpec::paper();
  c.seed ^= 1;
  EXPECT_NE(pe::spec_hash(c), pe::spec_hash(pe::SweepSpec::paper()));
  pe::SweepSpec d = pe::SweepSpec::paper();
  d.samples_per_task += 1;
  EXPECT_NE(pe::spec_hash(d), pe::spec_hash(pe::SweepSpec::paper()));
  pe::SweepSpec e = pe::SweepSpec::paper();
  e.gates.clear();
  EXPECT_NE(pe::spec_hash(e), pe::spec_hash(pe::SweepSpec::paper()));
}

TEST(SweepSpec, ValidateCatchesUnknownNames) {
  const pe::Suite& suite = pe::Suite::paper();
  EXPECT_EQ(pe::SweepSpec::paper().validate(suite), "");
  pe::SweepSpec bad_llm;
  bad_llm.llms = {"gpt-17"};
  EXPECT_NE(bad_llm.validate(suite), "");
  pe::SweepSpec bad_pair;
  bad_pair.pairs = {"cuda->fortran"};
  EXPECT_NE(bad_pair.validate(suite), "");
  pe::SweepSpec missing_pair;
  missing_pair.pairs = {"kokkos->cuda"};  // well-formed, not registered
  EXPECT_NE(missing_pair.validate(suite), "");
  pe::SweepSpec bad_samples;
  bad_samples.samples_per_task = 0;
  EXPECT_NE(bad_samples.validate(suite), "");
  // A typo inside a gate would silently drop every cell of the technique,
  // so gate lists must resolve against the suite too.
  pe::SweepSpec bad_gate = pe::SweepSpec::paper();
  bad_gate.gates[0].llms = {"gpt4o-mini"};  // typo
  EXPECT_NE(bad_gate.validate(suite), "");
  pe::SweepSpec bad_gate_pair = pe::SweepSpec::paper();
  bad_gate_pair.gates[0].pairs = {"cuda->fortran"};
  EXPECT_NE(bad_gate_pair.validate(suite), "");
}

TEST(SweepSpec, GatesRestrictCells) {
  // The paper's SWE-agent gate: cells exist only for gpt-4o-mini on
  // CUDA->Kokkos over the four smallest apps.
  const auto cells =
      pe::sweep_cells(pe::Suite::paper(), small_paper_spec());
  int swe_cells = 0;
  for (const auto& cell : cells) {
    if (cell.technique != Technique::SweAgent) continue;
    ++swe_cells;
    EXPECT_EQ(cell.profile->name, "gpt-4o-mini");
    EXPECT_EQ(cell.pair, (Pair{Model::Cuda, Model::Kokkos}));
    EXPECT_NE(cell.app->name, "XSBench");
    EXPECT_NE(cell.app->name, "llm.c");
  }
  EXPECT_EQ(swe_cells, 4);
}

// ------------------------------------------------------- sweep identity --

TEST(RunSweep, PaperSpecBitIdenticalToLegacyPairSweeps) {
  // The acceptance invariant of the redesign: Suite::paper() + the
  // default spec reproduces the pre-registry per-pair sweeps exactly.
  const pe::SweepSpec spec = small_paper_spec();
  const auto swept = pe::run_sweep(pe::Suite::paper(), spec);

  std::vector<pe::TaskResult> legacy;
  pe::HarnessConfig config;
  config.samples_per_task = spec.samples_per_task;
  config.seed = spec.seed;
  for (const Pair& pair : pareval::llm::all_pairs()) {
    for (auto& t : pe::run_pair_sweep(pair, config)) {
      legacy.push_back(std::move(t));
    }
  }
  EXPECT_EQ(swept, legacy);
}

TEST(RunSweep, CustomSuiteIdenticalAcrossThreadCounts) {
  const pe::Suite suite = custom_suite();
  const pe::SweepSpec spec = custom_spec();
  ASSERT_EQ(spec.validate(suite), "");

  pe::HarnessConfig serial;
  serial.threads = 1;
  pe::ScoreCache serial_cache;
  serial.score_cache = &serial_cache;
  pe::HarnessConfig pooled;
  pooled.threads = ps::hardware_threads();
  pe::ScoreCache pooled_cache;
  pooled.score_cache = &pooled_cache;

  const auto a = pe::run_sweep(suite, spec, serial);
  const auto b = pe::run_sweep(suite, spec, pooled);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  // The custom LLM generates (profile-wide scores), so cells ran.
  for (const auto& t : a) {
    EXPECT_TRUE(t.ran) << t.llm << " / " << t.app << ": " << t.abort_reason;
    EXPECT_EQ(t.llm, "tabby-test");
  }
}

TEST(RunSweep, CustomSuiteThreeWayShardSplitIsExact) {
  const pe::Suite suite = custom_suite();
  const pe::SweepSpec spec = custom_spec();

  constexpr int kShards = 3;
  std::vector<pe::ShardResult> shards;
  for (int i = 0; i < kShards; ++i) {
    shards.push_back(pe::run_shard(suite, spec, i, kShards, {}));
    EXPECT_EQ(shards.back().shard_count, kShards);
    EXPECT_EQ(shards.back().spec, spec);
  }
  // Through the on-disk format, as the CI fan-in consumes it.
  std::vector<pe::ShardResult> parsed;
  std::string error;
  ASSERT_TRUE(pe::parse_shard_file(pe::shard_file_text(shards), &parsed,
                                   &error))
      << error;
  ASSERT_EQ(parsed.size(), shards.size());
  EXPECT_EQ(parsed, shards);

  const auto merged = pe::merge_shards(suite, spec, parsed);
  EXPECT_EQ(merged, pe::run_sweep(suite, spec));
}

// ------------------------------------------------------ hash enforcement --

TEST(ShardSpecHash, MergeRejectsMismatchedSpecHash) {
  const pe::Suite& suite = pe::Suite::paper();
  pe::SweepSpec spec = small_paper_spec();
  spec.pairs = {"cuda->omp_offload"};
  spec.llms = {"o4-mini"};
  spec.apps = {"nanoXOR", "microXOR"};

  std::vector<pe::ShardResult> shards;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(pe::run_shard(suite, spec, i, 2, {}));
  }
  EXPECT_NO_THROW(pe::merge_shards(suite, spec, shards));

  // One shard ran a different spec: refused.
  auto tampered = shards;
  tampered[1].spec.seed ^= 1;
  EXPECT_THROW(pe::merge_shards(suite, spec, tampered), std::runtime_error);
  // The authoritative spec disagrees with every shard: refused too.
  pe::SweepSpec other = spec;
  other.samples_per_task += 1;
  EXPECT_THROW(pe::merge_shards(suite, other, shards), std::runtime_error);
}

TEST(ShardSpecHash, MergeRejectsShardsFromADifferentSuite) {
  // Same spec (even same hash, since an empty-selection spec names no
  // registry entries), different suite: the shard's bare cell indices
  // would resolve against the wrong cells, so the merger must refuse.
  const pe::Suite custom = custom_suite();
  pe::SweepSpec spec;
  spec.llms = {"o4-mini"};
  spec.pairs = {"cuda->omp_offload"};
  spec.apps = {"nanoXOR"};
  spec.techniques = {"non_agentic"};
  spec.samples_per_task = 1;
  const auto shard = pe::run_shard(custom, spec, 0, 1, {});
  EXPECT_EQ(shard.suite_fingerprint, custom.fingerprint());
  EXPECT_NE(pe::Suite::paper().fingerprint(), custom.fingerprint());
  EXPECT_THROW(pe::merge_shards(pe::Suite::paper(), spec, {shard}),
               std::runtime_error);
  EXPECT_NO_THROW(pe::merge_shards(custom, spec, {shard}));
}

TEST(ShardSpecHash, ParserRejectsTamperedSpec) {
  const pe::Suite& suite = pe::Suite::paper();
  pe::SweepSpec spec = small_paper_spec(1);
  spec.pairs = {"cuda->omp_offload"};
  spec.llms = {"gemini-1.5-flash"};
  spec.apps = {"nanoXOR"};
  spec.techniques = {"non_agentic"};
  const auto shard = pe::run_shard(suite, spec, 0, 1, {});
  std::string text = pe::shard_file_text({shard});

  // Flip the embedded seed without updating the recorded hash: the spec
  // no longer matches its spec_hash and the parser refuses the file.
  const std::string seed_hex = ps::u64_to_hex(spec.seed);
  ASSERT_NE(text.find(seed_hex), std::string::npos);
  std::string tampered =
      ps::replace_all(text, seed_hex, ps::u64_to_hex(spec.seed ^ 1));
  std::vector<pe::ShardResult> parsed;
  std::string error;
  EXPECT_FALSE(pe::parse_shard_file(tampered, &parsed, &error));
}

// ------------------------------------------------------------- reporting --

TEST(Report, SuiteAwareBuildersRenderCustomColumns) {
  const pe::Suite suite = custom_suite();
  const pe::SweepSpec spec = custom_spec();
  const auto tasks = pe::run_sweep(suite, spec);

  const Pair reverse{Model::OmpThreads, Model::Cuda};
  const std::string f2 = pe::figure2_report(suite, spec, reverse, tasks);
  EXPECT_NE(f2.find("tabby-test"), std::string::npos);
  EXPECT_NE(f2.find("picoXOR-test"), std::string::npos);
  // Only the spec-selected techniques render blocks; SWE-agent is not
  // selected by this spec.
  EXPECT_NE(f2.find("Non-agentic"), std::string::npos);
  EXPECT_EQ(f2.find("SWE-agent"), std::string::npos);

  const std::string t1 = pe::table1_report(suite);
  EXPECT_NE(t1.find("picoXOR-test"), std::string::npos);
}
