// Tests for the simulated-LLM layer and the evaluation harness: metrics,
// calibration tables, prompt construction, technique behaviour (aborted
// cells, token ordering), end-to-end cell convergence to the paper's
// scores, and the classification pipeline.

#include <gtest/gtest.h>

#include "eval/classify.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "support/strings.hpp"

using namespace pareval;
using llm::Technique;

// ----------------------------------------------------------- metrics ----

TEST(Metrics, PassAtKBasics) {
  EXPECT_DOUBLE_EQ(eval::pass_at_k(25, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(eval::pass_at_k(25, 25, 1), 1.0);
  EXPECT_NEAR(eval::pass_at_k(25, 5, 1), 0.2, 1e-12);
  // pass@k is monotone in k and c.
  EXPECT_GT(eval::pass_at_k(25, 5, 10), eval::pass_at_k(25, 5, 1));
  EXPECT_GT(eval::pass_at_k(25, 10, 1), eval::pass_at_k(25, 5, 1));
  // n - c < k => certain success.
  EXPECT_DOUBLE_EQ(eval::pass_at_k(10, 8, 5), 1.0);
}

TEST(Metrics, PassAtKMatchesClosedForm) {
  // 1 - C(n-c,k)/C(n,k) for n=10, c=3, k=2: 1 - C(7,2)/C(10,2) = 1-21/45.
  EXPECT_NEAR(eval::pass_at_k(10, 3, 2), 1.0 - 21.0 / 45.0, 1e-12);
}

TEST(Metrics, ExpectedTokenCost) {
  EXPECT_DOUBLE_EQ(eval::expected_token_cost(1000, 0.5), 2000.0);
  EXPECT_LT(eval::expected_token_cost(1000, 0.0), 0.0);  // undefined
}

// -------------------------------------------------------- calibration ---

TEST(Calibration, PaperCellsPresent) {
  const auto pair = llm::all_pairs()[0];
  const auto cell = llm::calibration_lookup(
      "o4-mini", Technique::NonAgentic, pair, "nanoXOR");
  ASSERT_TRUE(cell.has_value());
  EXPECT_DOUBLE_EQ(cell->code_build, 0.92);
  EXPECT_DOUBLE_EQ(cell->code_pass, 0.84);
  EXPECT_DOUBLE_EQ(cell->overall_build, 0.76);
  EXPECT_DOUBLE_EQ(cell->overall_pass, 0.68);
}

TEST(Calibration, AbortedCellsMatchPaper) {
  const auto cuda_omp = llm::all_pairs()[0];
  const auto cuda_kokkos = llm::all_pairs()[1];
  // Non-agentic: Gemini & GPT-4o-mini cannot emit llm.c (output context).
  EXPECT_FALSE(llm::calibration_lookup("gemini-1.5-flash",
                                       Technique::NonAgentic, cuda_omp,
                                       "llm.c"));
  EXPECT_FALSE(llm::calibration_lookup("gpt-4o-mini", Technique::NonAgentic,
                                       cuda_omp, "llm.c"));
  // Gemini also aborts XSBench for CUDA->OMP but not CUDA->Kokkos.
  EXPECT_FALSE(llm::calibration_lookup("gemini-1.5-flash",
                                       Technique::NonAgentic, cuda_omp,
                                       "XSBench"));
  EXPECT_TRUE(llm::calibration_lookup("gemini-1.5-flash",
                                      Technique::NonAgentic, cuda_kokkos,
                                      "XSBench"));
  // Top-down: QwQ exceeds the node-hour budget on XSBench and llm.c.
  EXPECT_FALSE(llm::calibration_lookup("qwq-32b-q8_0", Technique::TopDown,
                                       cuda_omp, "XSBench"));
  // Llama only for CUDA->Kokkos.
  EXPECT_TRUE(llm::calibration_lookup("Llama-3.3-70B", Technique::TopDown,
                                      cuda_omp, "XSBench"));
  EXPECT_FALSE(llm::calibration_lookup("Llama-3.3-70B", Technique::TopDown,
                                       cuda_kokkos, "XSBench"));
}

TEST(Calibration, SweAgentSliceOnly) {
  const auto cuda_kokkos = llm::all_pairs()[1];
  EXPECT_TRUE(llm::calibration_lookup("gpt-4o-mini", Technique::SweAgent,
                                      cuda_kokkos, "nanoXOR"));
  EXPECT_FALSE(llm::calibration_lookup("o4-mini", Technique::SweAgent,
                                       cuda_kokkos, "nanoXOR"));
  EXPECT_FALSE(llm::calibration_lookup("gpt-4o-mini", Technique::SweAgent,
                                       llm::all_pairs()[0], "nanoXOR"));
  EXPECT_FALSE(llm::calibration_lookup("gpt-4o-mini", Technique::SweAgent,
                                       cuda_kokkos, "XSBench"));
}

TEST(Calibration, DefectWeightsRespectClassSplit) {
  const auto build_w = llm::defect_weights("o4-mini", "nanoXOR", true);
  const auto src_w = llm::defect_weights("o4-mini", "nanoXOR", false);
  const auto& kinds = xlate::all_defect_kinds();
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i] == xlate::DefectKind::Semantic) {
      EXPECT_EQ(build_w[i], 0.0);
      EXPECT_EQ(src_w[i], 0.0);
      continue;
    }
    if (xlate::is_build_file_defect(kinds[i])) {
      EXPECT_EQ(src_w[i], 0.0);
    } else {
      EXPECT_EQ(build_w[i], 0.0);
    }
  }
}

TEST(Calibration, Figure3Reference) {
  EXPECT_EQ(llm::figure3_reference(xlate::DefectKind::UndeclaredId,
                                   "microXOR", "gemini-1.5-flash"),
            75);
  EXPECT_EQ(llm::figure3_reference(xlate::DefectKind::InvalidFlag,
                                   "SimpleMOC-kernel", "gemini-1.5-flash"),
            57);
}

// ------------------------------------------------------------ prompts ---

TEST(Prompts, NonAgenticMatchesListing1Structure) {
  const auto* app = apps::find_app("nanoXOR");
  const auto pair = llm::all_pairs()[0];
  const std::string p = agents::build_nonagentic_prompt(
      *app, app->repos.at(apps::Model::Cuda), "src/main.cu", pair);
  EXPECT_NE(p.find("helpful coding assistant"), std::string::npos);
  EXPECT_NE(p.find("|-- Makefile"), std::string::npos);
  EXPECT_NE(p.find("Translate the src/main.cu file"), std::string::npos);
  EXPECT_NE(p.find("Assume .cpp filenames"), std::string::npos);
  // main file => CLI addendum present.
  EXPECT_NE(p.find("Command line interface requirements"),
            std::string::npos);
  // Build file prompt gets the build addendum instead.
  const std::string pb = agents::build_nonagentic_prompt(
      *app, app->repos.at(apps::Model::Cuda), "Makefile", pair);
  EXPECT_NE(pb.find("Build system requirements"), std::string::npos);
}

// ----------------------------------------------------------- technique --

TEST(Technique, AbortedCellProducesNoRepo) {
  const auto* app = apps::find_app("llm.c");
  const auto* gemini = llm::find_profile("gemini-1.5-flash");
  support::Rng rng(1);
  const auto r = agents::run_technique(*app, Technique::NonAgentic, *gemini,
                                       llm::all_pairs()[0], rng);
  EXPECT_FALSE(r.generated);
  EXPECT_NE(r.abort_reason.find("context"), std::string::npos);
}

TEST(Technique, ReasoningModelsUseMoreOutputTokens) {
  const auto* app = apps::find_app("nanoXOR");
  const auto pair = llm::all_pairs()[0];
  support::Rng r1(1), r2(1);
  const auto qwq = agents::run_technique(
      *app, Technique::NonAgentic, *llm::find_profile("qwq-32b-q8_0"), pair,
      r1);
  const auto gpt = agents::run_technique(
      *app, Technique::NonAgentic, *llm::find_profile("gpt-4o-mini"), pair,
      r2);
  ASSERT_TRUE(qwq.generated);
  ASSERT_TRUE(gpt.generated);
  EXPECT_GT(qwq.output_tokens, 4 * gpt.output_tokens);
}

TEST(Technique, TokensGrowWithAppSize) {
  const auto pair = llm::all_pairs()[0];
  const auto* prof = llm::find_profile("o4-mini");
  support::Rng r1(1), r2(1);
  const auto small = agents::run_technique(
      *apps::find_app("nanoXOR"), Technique::NonAgentic, *prof, pair, r1);
  const auto big = agents::run_technique(
      *apps::find_app("XSBench"), Technique::NonAgentic, *prof, pair, r2);
  EXPECT_GT(agents::total_tokens(big), 3 * agents::total_tokens(small));
}

TEST(Technique, TopDownCheaperThanNonAgenticForApiModels) {
  // §8.4: commercial API models consume fewer tokens with top-down.
  const auto pair = llm::all_pairs()[0];
  const auto* prof = llm::find_profile("gpt-4o-mini");
  support::Rng r1(1), r2(1);
  const auto na = agents::run_technique(
      *apps::find_app("microXOR"), Technique::NonAgentic, *prof, pair, r1);
  const auto td = agents::run_technique(
      *apps::find_app("microXOR"), Technique::TopDown, *prof, pair, r2);
  EXPECT_LT(agents::total_tokens(td), agents::total_tokens(na));
}

TEST(Technique, TopDownPricierForLocalModels) {
  const auto pair = llm::all_pairs()[0];
  const auto* prof = llm::find_profile("Llama-3.3-70B");
  support::Rng r1(1), r2(1);
  const auto na = agents::run_technique(
      *apps::find_app("microXOR"), Technique::NonAgentic, *prof, pair, r1);
  const auto td = agents::run_technique(
      *apps::find_app("microXOR"), Technique::TopDown, *prof, pair, r2);
  EXPECT_GT(agents::total_tokens(td), agents::total_tokens(na));
}

// ------------------------------------------------------------ harness ---

TEST(Harness, CellConvergesToPaperScores) {
  // o4-mini / non-agentic / CUDA->OMP / nanoXOR, averaged over seeds,
  // should land near Figure 2's (0.92, 0.84, 0.76, 0.68).
  const auto* app = apps::find_app("nanoXOR");
  const auto pair = llm::all_pairs()[0];
  const auto* prof = llm::find_profile("o4-mini");
  double cb = 0, cp = 0, ob = 0, op = 0;
  const int kRounds = 4;
  for (int r = 0; r < kRounds; ++r) {
    eval::HarnessConfig cfg;
    cfg.samples_per_task = 25;
    cfg.seed = 1070 + 104729u * static_cast<unsigned>(r);
    const auto t =
        eval::run_task(*app, Technique::NonAgentic, *prof, pair, cfg);
    ASSERT_TRUE(t.ran);
    cb += t.build1_codeonly();
    cp += t.pass1_codeonly();
    ob += t.build1_overall();
    op += t.pass1_overall();
  }
  EXPECT_NEAR(cb / kRounds, 0.92, 0.12);
  EXPECT_NEAR(cp / kRounds, 0.84, 0.12);
  EXPECT_NEAR(ob / kRounds, 0.76, 0.12);
  EXPECT_NEAR(op / kRounds, 0.68, 0.12);
}

TEST(Harness, OverallNeverExceedsCodeOnlyByMuch) {
  // Structural invariant of the two scoring modes: a ground-truth build
  // file can only help. (Small sampling jitter aside, code-only >= overall.)
  eval::HarnessConfig cfg;
  cfg.samples_per_task = 15;
  const auto* app = apps::find_app("microXORh");
  const auto t = eval::run_task(*app, Technique::NonAgentic,
                                *llm::find_profile("qwq-32b-q8_0"),
                                llm::all_pairs()[0], cfg);
  ASSERT_TRUE(t.ran);
  EXPECT_GE(t.built_codeonly, t.built_overall);
  EXPECT_GE(t.passed_codeonly, t.passed_overall);
}

TEST(Harness, AbortedTaskIsMarked) {
  eval::HarnessConfig cfg;
  cfg.samples_per_task = 2;
  const auto t = eval::run_task(*apps::find_app("llm.c"),
                                Technique::NonAgentic,
                                *llm::find_profile("gemini-1.5-flash"),
                                llm::all_pairs()[0], cfg);
  EXPECT_FALSE(t.ran);
  EXPECT_FALSE(t.abort_reason.empty());
}

TEST(Harness, ScoreRepoRejectsHostOnlyTranslations) {
  // A "translation" that never touches the device must not pass, even if
  // its output is right (§6.1's hardware requirement).
  const auto* app = apps::find_app("nanoXOR");
  vfs::Repo repo = app->repos.at(apps::Model::OmpThreads);
  // Pretend this is the OmpOffload translation: host-only build.
  const auto score = eval::score_repo(*app, repo, apps::Model::OmpOffload);
  EXPECT_TRUE(score.built);
  EXPECT_FALSE(score.passed);
  EXPECT_NE(score.log.find("did not execute on the GPU"),
            std::string::npos);
}

// ------------------------------------------------------ staged pipeline --

TEST(Pipeline, StagesConcatenateToLegacyLog) {
  // The staged pipeline's flat_log must be byte-identical to the thin
  // score_repo wrapper, for a passing, a device-failing, and a
  // build-failing repo.
  const auto* app = apps::find_app("nanoXOR");
  for (const auto target :
       {apps::Model::OmpThreads, apps::Model::OmpOffload}) {
    vfs::Repo repo = app->repos.at(apps::Model::OmpThreads);
    const auto staged = eval::ScoringPipeline().score(*app, repo, target);
    const auto flat = eval::score_repo(*app, repo, target);
    EXPECT_EQ(staged.built, flat.built);
    EXPECT_EQ(staged.passed, flat.passed);
    EXPECT_EQ(staged.flat_log(), flat.log);
  }
  vfs::Repo broken = app->repos.at(apps::Model::OmpThreads);
  broken.remove("Makefile");
  const auto staged =
      eval::ScoringPipeline().score(*app, broken, apps::Model::OmpThreads);
  const auto flat =
      eval::score_repo(*app, broken, apps::Model::OmpThreads);
  EXPECT_FALSE(staged.built);
  EXPECT_EQ(staged.flat_log(), flat.log);
  ASSERT_EQ(staged.stages.size(), 1u);
  EXPECT_EQ(staged.stages[0].stage, eval::Stage::Build);
  EXPECT_EQ(staged.stages[0].verdict, eval::StageVerdict::Fail);
}

TEST(Pipeline, ValidateStageCarriesDeviceProvenance) {
  const auto* app = apps::find_app("nanoXOR");
  vfs::Repo repo = app->repos.at(apps::Model::OmpThreads);
  const auto staged =
      eval::ScoringPipeline().score(*app, repo, apps::Model::OmpOffload);
  EXPECT_TRUE(staged.built);
  EXPECT_FALSE(staged.passed);
  ASSERT_FALSE(staged.stages.empty());
  const auto& last = staged.stages.back();
  EXPECT_EQ(last.stage, eval::Stage::Validate);
  EXPECT_EQ(last.verdict, eval::StageVerdict::Fail);
  EXPECT_EQ(last.detail, eval::kDetailNoDeviceLaunch);
  EXPECT_EQ(last.test_case, 0);
}

TEST(Pipeline, BuildArtifactCacheSharesBuildsAcrossTargets) {
  // The lower cache layer is keyed without the target model: scoring one
  // artifact under two targets performs exactly one build.
  const auto* app = apps::find_app("nanoXOR");
  const vfs::Repo& repo = app->repos.at(apps::Model::OmpThreads);
  eval::ScoreCache cache;
  const auto host = cache.score(*app, repo, apps::Model::OmpThreads);
  const auto gpu = cache.score(*app, repo, apps::Model::OmpOffload);
  EXPECT_TRUE(host.passed);
  EXPECT_FALSE(gpu.passed);
  EXPECT_EQ(cache.misses(), 2u);           // two distinct score keys...
  EXPECT_EQ(cache.builds().misses(), 1u);  // ...one build performed
  EXPECT_EQ(cache.builds().hits(), 1u);
  // And the shared build produced identical Build-stage outcomes.
  ASSERT_FALSE(host.stages.empty());
  ASSERT_FALSE(gpu.stages.empty());
  EXPECT_EQ(host.stages[0], gpu.stages[0]);
}

TEST(Pipeline, OverallAndCodeOnlyShareOneBuild) {
  // A clean generation's build file mirrors the ground-truth one, so the
  // Overall and Code-only scorings of one sample are one build + one
  // cached re-read — asserted here via the per-layer counters of the
  // cache run_cell_sample consults.
  const auto* app = apps::find_app("nanoXOR");
  const auto pair = llm::all_pairs()[0];
  const auto* prof = llm::find_profile("o4-mini");
  eval::ScoreCache cache;
  eval::HarnessConfig cfg;
  cfg.samples_per_task = 1;
  cfg.score_cache = &cache;
  // Seed chosen so sample #0 passes overall (defect-free generation).
  for (std::uint64_t seed = 1070; seed < 1170; ++seed) {
    cache.clear();
    cfg.seed = seed;
    const auto run = eval::run_cell_sample(
        *app, Technique::NonAgentic, *prof, pair, cfg, /*sample_index=*/0);
    ASSERT_TRUE(run.generated);
    if (!run.outcome.passed_overall) continue;
    // Overall scored the artifact (miss), Code-only swapped in the
    // identical ground-truth build file and hit the score layer: one
    // build total across both scoring modes.
    EXPECT_TRUE(run.outcome.passed_codeonly);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.builds().misses(), 1u);
    return;
  }
  FAIL() << "no seed in range produced a passing sample";
}

TEST(Pipeline, SuiteAwarePipelineHashPinsPaperOverload) {
  // The zero-arg overload is the suite-aware hash of the paper suite, and
  // both stay golden-pinned: the CI score-cache key must only move when
  // scoring semantics change.
  EXPECT_EQ(eval::scoring_pipeline_hash(),
            eval::scoring_pipeline_hash(eval::Suite::paper()));
  EXPECT_EQ(support::u64_to_hex(eval::scoring_pipeline_hash()),
            "721f9e14c52c7ae7");
}

// ----------------------------------------------------- classification ---

TEST(Classify, LabelsKnownLogs) {
  xlate::DefectKind kind;
  ASSERT_TRUE(eval::label_log(
      "Makefile:3: error: missing separator (recipe line must start with a "
      "TAB)", &kind));
  EXPECT_EQ(kind, xlate::DefectKind::MakefileSyntax);
  ASSERT_TRUE(eval::label_log(
      "src/main.cpp:5: error: use of undeclared identifier 'cellsXOR'",
      &kind));
  EXPECT_EQ(kind, xlate::DefectKind::UndeclaredId);
  ASSERT_TRUE(eval::label_log("/usr/bin/ld: cannot find -lfoo", &kind));
  EXPECT_EQ(kind, xlate::DefectKind::LinkError);
  EXPECT_FALSE(eval::label_log("everything is fine", &kind));
}

TEST(Classify, PipelineProducesCategoryCounts) {
  eval::HarnessConfig cfg;
  cfg.samples_per_task = 6;
  std::vector<eval::TaskResult> tasks;
  for (const char* name : {"gemini-1.5-flash", "o4-mini"}) {
    tasks.push_back(eval::run_task(*apps::find_app("nanoXOR"),
                                   Technique::NonAgentic,
                                   *llm::find_profile(name),
                                   llm::all_pairs()[0], cfg));
  }
  const auto result = eval::classify_failures(tasks);
  EXPECT_FALSE(result.logs.empty());
  int labelled = 0;
  for (const auto& log : result.logs) labelled += log.labelled;
  // The keyword pass should label nearly everything our pipeline emits.
  EXPECT_GT(labelled, static_cast<int>(result.logs.size() * 3 / 4));
}

// -------------------------------------------------------------- report --

TEST(Report, Table1AndFigure2Render) {
  const std::string t1 = eval::table1_report();
  EXPECT_NE(t1.find("XSBench"), std::string::npos);
  EXPECT_NE(t1.find("# Files"), std::string::npos);

  eval::HarnessConfig cfg;
  cfg.samples_per_task = 4;
  std::vector<eval::TaskResult> tasks = {eval::run_task(
      *apps::find_app("nanoXOR"), Technique::NonAgentic,
      *llm::find_profile("o4-mini"), llm::all_pairs()[0], cfg)};
  const std::string f2 = eval::figure2_report(llm::all_pairs()[0], tasks);
  EXPECT_NE(f2.find("Code-only build@1"), std::string::npos);
  EXPECT_NE(f2.find("Overall pass@1"), std::string::npos);
  const std::string f4 = eval::figure4_report(tasks);
  EXPECT_NE(f4.find("inference tokens"), std::string::npos);
}
