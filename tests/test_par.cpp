// Tests for the work-stealing ThreadPool orchestrator and for the
// scheduling-invariance guarantee of the evaluation harness: identical
// TaskResults no matter how many threads execute the sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <ctime>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "eval/harness.hpp"
#include "support/par.hpp"

namespace ps = pareval::support;
namespace pe = pareval::eval;

TEST(ThreadPool, SubmitReturnsValue) {
  ps::ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(pool.await(fut), 42);
}

TEST(ThreadPool, WorkerCountDefaultsToHardware) {
  ps::ThreadPool pool;
  EXPECT_EQ(pool.worker_count(), ps::hardware_threads());
  ps::ThreadPool three(3);
  EXPECT_EQ(three.worker_count(), 3u);
}

TEST(ThreadPool, ExercisesAllWorkers) {
  constexpr unsigned kWorkers = 4;
  ps::ThreadPool pool(kWorkers);
  // A barrier only passable when kWorkers tasks run concurrently: each task
  // blocks until all have arrived, so every worker must pick one up. The
  // timed wait turns a scheduling bug into a test failure, not a hang.
  std::mutex mu;
  std::condition_variable cv;
  unsigned arrived = 0;
  std::set<std::thread::id> ids;
  std::vector<std::future<bool>> futs;
  for (unsigned t = 0; t < kWorkers; ++t) {
    futs.push_back(pool.submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
      ++arrived;
      cv.notify_all();
      return cv.wait_for(lock, std::chrono::seconds(10),
                         [&] { return arrived == kWorkers; });
    }));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get());
  EXPECT_EQ(ids.size(), kWorkers);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ps::ThreadPool pool(2);
  auto fut = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.await(fut), std::runtime_error);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // More outer tasks than workers, each submitting and awaiting children:
  // with blocking waits this deadlocks a 2-worker pool; await() helps.
  ps::ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  std::vector<std::future<int>> outers;
  for (int t = 0; t < 8; ++t) {
    outers.push_back(pool.submit([&pool, &inner_runs] {
      std::vector<std::future<int>> inners;
      for (int i = 0; i < 4; ++i) {
        inners.push_back(pool.submit([&inner_runs] {
          inner_runs.fetch_add(1);
          return 1;
        }));
      }
      int sum = 0;
      for (auto& f : inners) sum += pool.await(f);
      return sum;
    }));
  }
  int total = 0;
  for (auto& f : outers) total += pool.await(f);
  EXPECT_EQ(total, 32);
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  std::atomic<int> count{0};
  ps::parallel_for(0, 8, [&](std::size_t) {
    ps::parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, RunPendingTaskFromExternalThread) {
  ps::ThreadPool pool(1);
  // Saturate the single worker, then verify the external (test) thread can
  // steal the queued second task itself. Submit the second task only after
  // the worker has claimed the first, or this thread could steal the
  // blocker instead and spin in it.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  auto queued = pool.submit([] { return 7; });
  while (queued.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!pool.run_pending_task()) std::this_thread::yield();
  }
  EXPECT_EQ(queued.get(), 7);
  release.store(true);
  pool.await(blocker);
}

TEST(ThreadPool, IdleHelpUntilBurnsLittleCpu) {
  // An idle help_until must back off to cv sleeps instead of yield-spinning:
  // waiting ~300ms of wall time on an empty pool should cost the process
  // almost no CPU time. The old yield-spin burned a full core (~300ms CPU
  // here); the backoff path wakes at most every ~2ms for microseconds.
  ps::ThreadPool pool(2);
  std::atomic<bool> done{false};
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    done.store(true);
  });
  const std::clock_t c0 = std::clock();
  pool.help_until([&] { return done.load(); });
  const std::clock_t c1 = std::clock();
  releaser.join();
  const double cpu_ms = 1000.0 * static_cast<double>(c1 - c0) /
                        CLOCKS_PER_SEC;
  EXPECT_LT(cpu_ms, 120.0);  // generous: spin would cost ~300ms+
}

TEST(ThreadPool, HelpUntilWakesPromptlyOnPush) {
  // A helper deep in its backed-off sleep must still pick up new work
  // quickly: push() broadcasts while helpers sleep.
  ps::ThreadPool pool(1);
  std::atomic<bool> done{false};
  // Let the helper reach its capped nap, then measure push-to-run latency.
  std::thread pusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    pool.submit([&] { done.store(true); });
  });
  const auto t0 = std::chrono::steady_clock::now();
  pool.help_until([&] { return done.load(); });
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  pusher.join();
  // 100ms until the push, then the task must land well inside the 2ms nap
  // cap (wide margin for CI scheduling noise).
  EXPECT_LT(elapsed, 200.0);
}

TEST(ThreadPool, HighPriorityTasksDrainFirst) {
  // Block the single worker, queue Normal tasks, then High tasks, then
  // release: every High task must execute before any Normal one, even
  // though the Normal tasks were submitted first. The test thread never
  // helps (plain future waits), so the worker's pop order is observed
  // directly.
  ps::ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();

  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::future<void>> futs;
  constexpr int kEach = 4;
  for (int i = 0; i < kEach; ++i) {
    futs.push_back(pool.submit([&, i] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(100 + i);  // Normal lane
    }));
  }
  for (int i = 0; i < kEach; ++i) {
    futs.push_back(pool.submit(ps::TaskPriority::High, [&, i] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);  // High lane
    }));
  }
  release.store(true);
  blocker.wait();
  for (auto& f : futs) f.wait();

  ASSERT_EQ(order.size(), 2u * kEach);
  for (int i = 0; i < kEach; ++i) {
    EXPECT_LT(order[static_cast<std::size_t>(i)], 100)
        << "high-priority task displaced by a normal one at slot " << i;
    EXPECT_GE(order[static_cast<std::size_t>(kEach + i)], 100);
  }
}

TEST(ThreadPool, DrainCompletesQueuedTasksAndPoolStaysUsable) {
  // Block the lone worker so submissions pile up queued-but-unstarted,
  // then drain() from the test thread: it must help-execute every queued
  // task before returning, and the pool must keep working afterwards —
  // the between-jobs idle point of a long-lived server.
  ps::ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();

  std::atomic<int> ran{0};
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  release.store(true);
  pool.drain();
  EXPECT_EQ(ran.load(), kTasks);

  auto after = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(pool.await(after), 42);
}

TEST(ThreadPool, DestructorExecutesTasksSubmittedDuringTeardown) {
  // A draining task that chains follow-ups A -> B -> C: even when the
  // follow-ups land while the destructor is already joining, a submit()
  // that returned must never be dropped — the destroying thread sweeps
  // the queues after the workers exit.
  std::atomic<int> ran{0};
  {
    ps::ThreadPool pool(1);
    pool.submit([&, p = &pool] {
      ran.fetch_add(1);
      p->submit([&, p] {
        ran.fetch_add(1);
        p->submit([&] { ran.fetch_add(1); });
      });
    });
    // Destructor runs here, possibly before any of the chain executed.
  }
  EXPECT_EQ(ran.load(), 3);
}

TEST(ParallelFor, ThreadCapOfOneRunsInline) {
  std::set<std::thread::id> ids;
  ps::parallel_for(0, 64,
                   [&](std::size_t) { ids.insert(std::this_thread::get_id()); },
                   /*threads=*/1);
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(Determinism, RunTaskIdenticalAcrossThreadCounts) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  const auto& pair = pareval::llm::all_pairs()[0];
  const auto& profile = pareval::llm::all_profiles()[0];

  pe::HarnessConfig serial;
  serial.samples_per_task = 12;
  serial.threads = 1;
  pe::HarnessConfig parallel = serial;
  parallel.threads = ps::hardware_threads();

  const auto a = pe::run_task(*app, pareval::llm::Technique::NonAgentic,
                              profile, pair, serial);
  const auto b = pe::run_task(*app, pareval::llm::Technique::NonAgentic,
                              profile, pair, parallel);
  EXPECT_EQ(a, b);
}

TEST(Determinism, PairSweepIdenticalAcrossThreadCountsAndCache) {
  const auto& pair = pareval::llm::all_pairs()[0];
  pe::HarnessConfig serial;
  serial.samples_per_task = 2;
  serial.threads = 1;
  serial.use_score_cache = false;
  pe::HarnessConfig parallel = serial;
  parallel.threads = ps::hardware_threads();
  parallel.use_score_cache = true;

  const auto a = pe::run_pair_sweep(pair, serial);
  const auto b = pe::run_pair_sweep(pair, parallel);
  EXPECT_EQ(a, b);
}

TEST(ScoreCache, HitsOnIdenticalArtifacts) {
  const auto* app = pareval::apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  const auto& repo = app->repos.at(pareval::apps::Model::Cuda);
  pe::ScoreCache cache;
  const auto first = cache.score(*app, repo, pareval::apps::Model::Cuda);
  const auto again = cache.score(*app, repo, pareval::apps::Model::Cuda);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.built, again.built);
  EXPECT_EQ(first.passed, again.passed);
  EXPECT_EQ(first.flat_log(), again.flat_log());
  EXPECT_EQ(first.stages, again.stages);

  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(ScoreCache, ContentHashSeparatesFileBoundaries) {
  pareval::vfs::Repo a, b;
  a.write("x", "ab");
  a.write("y", "c");
  b.write("x", "a");
  b.write("y", "bc");
  EXPECT_NE(pe::repo_content_hash(a), pe::repo_content_hash(b));
  pareval::vfs::Repo a2 = a;
  EXPECT_EQ(pe::repo_content_hash(a), pe::repo_content_hash(a2));
}
