// Differential tests for the bytecode VM (minic/vm.hpp): the VM and the
// tree-walking interpreter must be bit-identical in every observable —
// exit code, stdout/stderr, diagnostics, and RunStats including the fuel
// (`steps`) counter — across the whole seed application corpus, targeted
// language features, and runtime-fault paths. This is the contract that
// lets the harness treat the engine as a pure speed knob (and lets the
// score cache omit it from its key).

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "buildsim/builder.hpp"
#include "eval/harness.hpp"
#include "eval/pipeline.hpp"
#include "execsim/driver.hpp"
#include "minic/engine.hpp"
#include "support/par.hpp"

namespace pa = pareval::apps;
namespace bs = pareval::buildsim;
namespace pe = pareval::eval;
using pareval::execsim::Executable;
using pareval::execsim::compile_repo;
using pareval::minic::Capabilities;
using pareval::minic::DiagCategory;
using pareval::minic::EngineKind;
using pareval::minic::RunLimits;
using pareval::minic::RunResult;
using pareval::minic::make_engine;
using pareval::vfs::Repo;

namespace {

Capabilities cuda_caps() {
  Capabilities c;
  c.cuda = true;
  c.curand = true;
  return c;
}
Capabilities omp_caps(bool offload = true) {
  Capabilities c;
  c.openmp = true;
  c.offload = offload;
  return c;
}

Executable compile_one(const std::string& src, Capabilities caps) {
  Repo repo;
  repo.write("main.cpp", src);
  return compile_repo(repo, {"main.cpp"}, caps);
}

RunResult run_engine(const Executable& exe, EngineKind kind,
                     const std::vector<std::string>& args = {},
                     RunLimits limits = {}) {
  return make_engine(kind, exe.program, *exe.builtins, limits)->run(args);
}

/// Run under the VM and report how many tree-walk fallback instructions
/// executed (ExecEngine::tree_fallbacks): 0 = the whole run was lowered.
long long vm_fallbacks(const Executable& exe,
                       const std::vector<std::string>& args = {},
                       RunLimits limits = {}) {
  auto eng = make_engine(EngineKind::Vm, exe.program, *exe.builtins, limits);
  eng->run(args);
  return eng->tree_fallbacks();
}

/// The full observable surface of a run, via the shared JSON codec.
std::string fingerprint(const RunResult& r) {
  return pareval::minic::to_json(r).dump();
}

/// Compile `src`, run it under both engines, require byte-identical
/// results, and return the (interpreter) result for further checks.
RunResult run_both(const std::string& src, Capabilities caps,
                   std::vector<std::string> args = {},
                   RunLimits limits = {}) {
  Executable exe = compile_one(src, caps);
  EXPECT_TRUE(exe.ok()) << exe.diags.render();
  const RunResult interp = run_engine(exe, EngineKind::Interp, args, limits);
  const RunResult vm = run_engine(exe, EngineKind::Vm, args, limits);
  EXPECT_EQ(fingerprint(interp), fingerprint(vm)) << src;
  return interp;
}

bool has_runtime_fault(const pareval::minic::DiagBag& bag) {
  for (const auto& d : bag.all()) {
    if (d.category == DiagCategory::RuntimeFault &&
        d.severity == pareval::minic::Severity::Error) {
      return true;
    }
  }
  return false;
}

}  // namespace

// ------------------------------------------------- seed app corpus ----

namespace {

struct AppModelCase {
  const pa::AppSpec* app;
  pa::Model model;
};

std::vector<AppModelCase> shipped_cases() {
  std::vector<AppModelCase> out;
  for (const pa::AppSpec* app : pa::all_apps()) {
    for (const pa::Model m : app->available) {
      out.push_back({app, m});
    }
  }
  return out;
}

std::string case_name(const testing::TestParamInfo<AppModelCase>& info) {
  std::string name =
      info.param.app->name + "_" + pa::model_name(info.param.model);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

}  // namespace

class VmDiff : public testing::TestWithParam<AppModelCase> {};

// Every shipped implementation of every app, every test case: the VM's
// RunResult (exit code, stdout, stderr, diags, stats) must be
// byte-identical to the interpreter's.
TEST_P(VmDiff, SeedCorpusBitIdentical) {
  const auto& [app, model] = GetParam();
  const auto build = bs::build_repo(app->repos.at(model));
  ASSERT_TRUE(build.ok) << build.log;
  for (const auto& tc : app->tests) {
    const RunResult interp =
        run_engine(*build.exe, EngineKind::Interp, tc.args);
    const RunResult vm = run_engine(*build.exe, EngineKind::Vm, tc.args);
    EXPECT_EQ(fingerprint(interp), fingerprint(vm))
        << app->name << " / " << pa::model_name(model);
    EXPECT_EQ(interp.stats, vm.stats);
  }
}

// The staged scoring pipeline with engine=Vm must produce the exact
// StagedScore — stage verdicts, details, and log slices — of the
// interpreter-backed pipeline.
TEST_P(VmDiff, StagedScoresBitIdentical) {
  const auto& [app, model] = GetParam();
  pe::ScoringPipeline interp_pipe;
  pe::ScoringPipeline vm_pipe;
  vm_pipe.set_engine(EngineKind::Vm);
  const pe::StagedScore a = interp_pipe.score(*app, app->repos.at(model), model);
  const pe::StagedScore b = vm_pipe.score(*app, app->repos.at(model), model);
  EXPECT_EQ(a, b) << app->name << " / " << pa::model_name(model);
}

INSTANTIATE_TEST_SUITE_P(Suite, VmDiff, testing::ValuesIn(shipped_cases()),
                         case_name);

// --------------------------------------------- language feature diffs ----

TEST(VmLang, ControlFlowAndCompoundOps) {
  const RunResult r = run_both(R"(
#include <stdio.h>
int main() {
  int sum = 0;
  for (int i = 0; i < 20; i++) {
    if (i % 3 == 0) continue;
    if (i > 15) break;
    sum += i;
  }
  int j = 0;
  while (j < 10) { j += 2; }
  do { j--; } while (j > 5);
  int k = 7;
  k *= 3; k -= 4; k /= 2; k %= 6; k <<= 2; k >>= 1; k |= 8; k &= 14; k ^= 5;
  int pre = ++k, post = k++;
  printf("%d %d %d %d %d\n", sum, j, k, pre, post);
  return 0;
}
)",
                               Capabilities{});
  EXPECT_TRUE(r.ok);
}

TEST(VmLang, PointersAndArrays) {
  const RunResult r = run_both(R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  int a[5];
  for (int i = 0; i < 5; i++) a[i] = i * i;
  int* p = a;
  int* q = p + 3;
  printf("%d %d %ld %d\n", *p, *q, q - p, p < q ? 1 : 0);
  double* d = (double*)malloc(4 * sizeof(double));
  d[0] = 1.5; d[1] = d[0] * 2.0;
  int x = 41;
  int* px = &x;
  *px += 1;
  printf("%d %.1f\n", x, d[1]);
  free(d);
  return 0;
}
)",
                               Capabilities{});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.stdout_text, "0 9 3 1\n42 3.0\n");
}

TEST(VmLang, ShortCircuitAndTernary) {
  run_both(R"(
#include <stdio.h>
int calls = 0;
int bump() { calls++; return 1; }
int main() {
  int a = 0 && bump();
  int b = 1 || bump();
  int c = 1 && bump();
  printf("%d %d %d %d %d\n", a, b, c, calls, calls > 0 ? 10 : 20);
  return 0;
}
)",
           Capabilities{});
}

TEST(VmLang, RecursionAndFunctionCalls) {
  const RunResult r = run_both(R"(
#include <stdio.h>
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main() { printf("%d\n", fib(18)); return 0; }
)",
                               Capabilities{});
  EXPECT_EQ(r.stdout_text, "2584\n");
}

TEST(VmLang, KokkosLambdaBodiesCompiled) {
  // Lambda bodies compile to their own chunks on first call; View
  // declarations and view-element assignments (`a(i) = ...`, an Assign
  // whose target is an ExprKind::Call lvalue) remain tree fallbacks.
  Capabilities caps;
  caps.kokkos = true;
  const RunResult r = run_both(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int main() {
  Kokkos::initialize();
  {
    int n = 16;
    Kokkos::View<double*> a("a", n);
    Kokkos::parallel_for("fill", n, KOKKOS_LAMBDA(int i) {
      a(i) = 3.0 * i;
    });
    Kokkos::fence();
    double total = 0.0;
    Kokkos::parallel_reduce(n, KOKKOS_LAMBDA(int i, double& sum) {
      sum += a(i);
    }, total);
    printf("%.0f\n", total);
  }
  Kokkos::finalize();
  return 0;
}
)",
                               caps);
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "360\n");
}

TEST(VmLang, CudaKernelLaunch) {
  const RunResult r = run_both(R"(
#include <stdio.h>
#include <cuda_runtime.h>
__global__ void scale(int* v, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) v[i] = v[i] * 2;
}
int main() {
  int h[8];
  for (int i = 0; i < 8; i++) h[i] = i;
  int* d;
  cudaMalloc(&d, 8 * sizeof(int));
  cudaMemcpy(d, h, 8 * sizeof(int), cudaMemcpyHostToDevice);
  scale<<<2, 4>>>(d, 8);
  cudaDeviceSynchronize();
  cudaMemcpy(h, d, 8 * sizeof(int), cudaMemcpyDeviceToHost);
  int sum = 0;
  for (int i = 0; i < 8; i++) sum += h[i];
  printf("%d\n", sum);
  return 0;
}
)",
                               cuda_caps());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.stats.device_kernel_launches, 1);
}

TEST(VmLang, OmpOffloadRegionCompiled) {
  // OpenMP target regions compile their structured body into a subchunk
  // (an OmpExec instruction brackets it with the data-environment
  // bookkeeping). Device-context stats must still match exactly.
  const RunResult r = run_both(R"(
#include <stdio.h>
#include <omp.h>
int main() {
  int n = 64;
  double sum = 0.0;
  double v[64];
  for (int i = 0; i < n; i++) v[i] = i * 0.5;
  #pragma omp target teams distribute parallel for reduction(+:sum) map(to: v[0:n])
  for (int i = 0; i < n; i++) sum += v[i];
  printf("%.1f\n", sum);
  return 0;
}
)",
                               omp_caps());
  EXPECT_TRUE(r.ok);
  EXPECT_GE(r.stats.target_regions, 1);
}

// ------------------------------------------------- lambda chunk diffs ----

TEST(VmLambda, CapturesThroughNestedScopes) {
  // Capture-by-value flattens globals + every scope of the creating
  // frame; the compiled lambda chunk must resolve captured names through
  // the same environment chain as the tree walker.
  Capabilities caps;
  caps.kokkos = true;
  const RunResult r = run_both(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
double gscale = 2.0;
int main() {
  Kokkos::initialize();
  {
    int n = 8;
    Kokkos::View<double*> out("out", n);
    double base = 10.0;
    {
      double inner = 0.5;
      {
        int deep = 3;
        Kokkos::parallel_for("fill", n, KOKKOS_LAMBDA(int i) {
          out(i) = gscale * base + inner * i + deep;
        });
      }
    }
    Kokkos::fence();
    double total = 0.0;
    Kokkos::parallel_reduce(n, KOKKOS_LAMBDA(int i, double& sum) {
      sum += out(i);
    }, total);
    printf("%.1f\n", total);
  }
  Kokkos::finalize();
  return 0;
}
)",
                               caps);
  EXPECT_TRUE(r.ok) << r.stderr_text;
  // 8 * (2*10 + 3) + 0.5 * (0+..+7) = 184 + 14 = 198
  EXPECT_EQ(r.stdout_text, "198.0\n");
}

TEST(VmLambda, LambdaCallsFunctionsAndRecursion) {
  // A compiled lambda chunk's CallFn dispatches through the virtual
  // call_function — recursion and nested lambda launches included.
  Capabilities caps;
  caps.kokkos = true;
  const RunResult r = run_both(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main() {
  Kokkos::initialize();
  {
    double total = 0.0;
    Kokkos::parallel_reduce(6, KOKKOS_LAMBDA(int i, double& sum) {
      sum += fib(i);
    }, total);
    printf("%.0f\n", total);
  }
  Kokkos::finalize();
  return 0;
}
)",
                               caps);
  EXPECT_TRUE(r.ok) << r.stderr_text;
  EXPECT_EQ(r.stdout_text, "12\n");  // 0+1+1+2+3+5
}

TEST(VmLambda, RepeatedLaunchesReuseOneChunk) {
  // Every closure over the same LambdaExpr shares one compiled chunk;
  // repeated launches across loop iterations must stay bit-identical
  // (and the fused fuel replay must hold on every re-entry).
  Capabilities caps;
  caps.kokkos = true;
  const RunResult r = run_both(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int main() {
  Kokkos::initialize();
  {
    double grand = 0.0;
    for (int rep = 1; rep <= 4; rep++) {
      double total = 0.0;
      Kokkos::parallel_reduce(5, KOKKOS_LAMBDA(int i, double& sum) {
        if (i % 2 == 0) { sum += rep * i; } else { sum += 1.0; }
      }, total);
      grand += total;
    }
    printf("%.0f\n", grand);
  }
  Kokkos::finalize();
  return 0;
}
)",
                               caps);
  EXPECT_TRUE(r.ok) << r.stderr_text;
  // per rep: rep*(0+2+4) + 2 = 6*rep + 2; reps 1..4 -> 60 + 8 = 68
  EXPECT_EQ(r.stdout_text, "68\n");
}

TEST(VmLambda, FuelExhaustionInsideLambdaChunk) {
  // The trap must fire after exactly max_steps + 1 charges and report the
  // same line from inside the compiled lambda chunk as from the walker
  // (run_both's fingerprint equality covers the diag byte-for-byte).
  Capabilities caps;
  caps.kokkos = true;
  RunLimits limits;
  limits.max_steps = 4000;
  const RunResult r = run_both(R"(
#include <Kokkos_Core.hpp>
int main() {
  Kokkos::initialize();
  {
    double total = 0.0;
    Kokkos::parallel_reduce(1000000, KOKKOS_LAMBDA(int i, double& sum) {
      sum += i * 0.5;
    }, total);
  }
  Kokkos::finalize();
  return 0;
}
)",
                               caps, {}, limits);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_runtime_fault(r.diags));
  EXPECT_EQ(r.stats.steps, limits.max_steps + 1);
}

// --------------------------------------------- fallback counting ----

TEST(VmCoverage, LoweredControlFlowRunsWithZeroFallbacks) {
  Executable exe = compile_one(R"(
#include <stdio.h>
#include <stdlib.h>
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main() {
  int* v = (int*)malloc(16 * sizeof(int));
  int sum = 0;
  for (int i = 0; i < 16; i++) {
    if (i % 4 == 0) continue;
    v[i] = fib(i % 8);
    sum += v[i];
  }
  int j = 0;
  while (j < 5) { j++; }
  do { j--; } while (j > 2);
  printf("%d %d\n", sum, j);
  free(v);
  return 0;
}
)",
                               Capabilities{});
  ASSERT_TRUE(exe.ok()) << exe.diags.render();
  EXPECT_EQ(vm_fallbacks(exe), 0);
}

TEST(VmCoverage, LambdaBodiesRunWithZeroFallbacks) {
  Executable exe = compile_one(R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int main() {
  Kokkos::initialize();
  {
    double total = 0.0;
    Kokkos::parallel_reduce(64, KOKKOS_LAMBDA(int i, double& sum) {
      if (i % 2 == 0) { sum += i * 0.5; }
    }, total);
    printf("%.0f\n", total);
  }
  Kokkos::finalize();
  return 0;
}
)",
                               [] {
                                 Capabilities c;
                                 c.kokkos = true;
                                 return c;
                               }());
  ASSERT_TRUE(exe.ok()) << exe.diags.render();
  EXPECT_EQ(vm_fallbacks(exe), 0);
}

TEST(VmCoverage, OmpHostParallelRunsWithZeroFallbacks) {
  Executable exe = compile_one(R"(
#include <stdio.h>
#include <stdlib.h>
#include <omp.h>
int main() {
  int n = 32;
  double* v = (double*)malloc(n * sizeof(double));
  for (int i = 0; i < n; i++) v[i] = i * 0.25;
  double sum = 0.0;
  #pragma omp parallel for reduction(+:sum)
  for (int i = 0; i < n; i++) sum += v[i];
  printf("%.2f\n", sum);
  free(v);
  return 0;
}
)",
                               omp_caps(/*offload=*/false));
  ASSERT_TRUE(exe.ok()) << exe.diags.render();
  EXPECT_EQ(vm_fallbacks(exe), 0);
}

TEST(VmCoverage, OmpTargetRegionRunsWithZeroFallbacks) {
  Executable exe = compile_one(R"(
#include <stdio.h>
#include <stdlib.h>
#include <omp.h>
int main() {
  int n = 32;
  double* v = (double*)malloc(n * sizeof(double));
  for (int i = 0; i < n; i++) v[i] = i * 0.5;
  double sum = 0.0;
  #pragma omp target teams distribute parallel for reduction(+:sum) map(to: v[0:n])
  for (int i = 0; i < n; i++) sum += v[i];
  #pragma omp target data map(tofrom: v[0:n])
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) v[i] = v[i] + 1.0;
  }
  printf("%.1f %.1f\n", sum, v[3]);
  free(v);
  return 0;
}
)",
                               omp_caps());
  ASSERT_TRUE(exe.ok()) << exe.diags.render();
  EXPECT_EQ(vm_fallbacks(exe), 0);
}

TEST(VmCoverage, ResidualFormsAreCountedAsFallbacks) {
  // `int a[3] = {...}` is a complex declaration (array + InitList): the
  // whole statement tree-walks and the counter must say so.
  Executable exe = compile_one(R"(
#include <stdio.h>
int main() {
  int a[3] = {1, 2, 3};
  printf("%d\n", a[0] + a[1] + a[2]);
  return 0;
}
)",
                               Capabilities{});
  ASSERT_TRUE(exe.ok()) << exe.diags.render();
  EXPECT_GT(vm_fallbacks(exe), 0);
}

// ------------------------------------------------- runtime fault diffs ----

TEST(VmFault, OutOfBoundsAccess) {
  const RunResult r = run_both(R"(
#include <stdlib.h>
int main() {
  int* p = (int*)malloc(4 * sizeof(int));
  p[10] = 3;
  return 0;
}
)",
                               Capabilities{});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_runtime_fault(r.diags)) << fingerprint(r);
}

TEST(VmFault, UninitializedRead) {
  const RunResult r = run_both(R"(
#include <stdio.h>
int main() {
  int x;
  int y = x + 1;
  printf("%d\n", y);
  return 0;
}
)",
                               Capabilities{});
  EXPECT_EQ(r.stats.read_uninitialized, 1);
}

TEST(VmFault, FuelExhaustion) {
  RunLimits limits;
  limits.max_steps = 5000;
  const RunResult r = run_both(R"(
int main() {
  int i = 0;
  while (1) { i++; }
  return i;
}
)",
                               Capabilities{}, {}, limits);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_runtime_fault(r.diags));
  // Fuel accounting is the one shared definition (minic/runio.hpp): both
  // engines clamp to exactly max_steps + 1.
  EXPECT_EQ(r.stats.steps, limits.max_steps + 1);
  EXPECT_NE(r.stderr_text.find("instruction budget"), std::string::npos);
}

TEST(VmFault, StackOverflow) {
  const RunResult r = run_both(R"(
int boom(int n) { return boom(n + 1); }
int main() { return boom(0); }
)",
                               Capabilities{});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.stderr_text.find("stack overflow"), std::string::npos);
}

TEST(VmFault, DivisionByZero) {
  const RunResult r = run_both(R"(
#include <stdio.h>
int main() {
  int a = 7, b = 0;
  printf("%d\n", a / b);
  return 0;
}
)",
                               Capabilities{});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_runtime_fault(r.diags));
}

// ------------------------------------------------ harness invariance ----

// The harness with engine=Vm is deterministic across thread counts and
// produces the exact TaskResult of the interpreter-backed harness.
TEST(VmHarness, RunTaskEngineAndThreadInvariant) {
  const auto* app = pa::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  const auto& pair = pareval::llm::all_pairs()[0];
  const auto& profile = pareval::llm::all_profiles()[0];
  const auto technique = pareval::llm::Technique::NonAgentic;

  pe::HarnessConfig interp_cfg;
  interp_cfg.samples_per_task = 6;
  interp_cfg.threads = 1;
  interp_cfg.use_score_cache = false;

  pe::HarnessConfig vm_serial = interp_cfg;
  vm_serial.engine = EngineKind::Vm;
  pe::HarnessConfig vm_parallel = vm_serial;
  vm_parallel.threads = pareval::support::hardware_threads();

  const auto a = pe::run_task(*app, technique, profile, pair, interp_cfg);
  const auto b = pe::run_task(*app, technique, profile, pair, vm_serial);
  const auto c = pe::run_task(*app, technique, profile, pair, vm_parallel);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}
