// Build-simulator tests: Makefile execution, CMake configuration, virtual
// toolchains and the full build->run path, asserting the same failure
// classes the paper's Figure 3 reports.

#include <gtest/gtest.h>

#include <algorithm>

#include "buildsim/builder.hpp"
#include "buildsim/cmakelite.hpp"
#include "buildsim/makefile.hpp"
#include "buildsim/toolchain.hpp"
#include "execsim/driver.hpp"
#include "minic/preproc.hpp"
#include "support/strings.hpp"

namespace bs = pareval::buildsim;
using pareval::execsim::run_executable;
using pareval::minic::DiagCategory;
using pareval::vfs::Repo;

namespace {

bool has_category(const pareval::minic::DiagBag& bag, DiagCategory cat) {
  for (const auto& d : bag.all()) {
    if (d.category == cat &&
        d.severity == pareval::minic::Severity::Error) {
      return true;
    }
  }
  return false;
}

Repo cuda_repo() {
  Repo repo;
  repo.write("Makefile",
             "CXX = nvcc\n"
             "CXXFLAGS = -O2 -arch=sm_80\n"
             "all: app\n"
             "app: src/main.cu\n"
             "\t$(CXX) $(CXXFLAGS) src/main.cu -o app\n"
             "clean:\n"
             "\trm -f app\n");
  repo.write("src/main.cu", R"(
#include <stdio.h>
#include <stdlib.h>
__global__ void fill(int* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = i * 2;
}
int main() {
  int n = 8;
  int* d;
  cudaMalloc((void**)&d, n * sizeof(int));
  fill<<<2, 4>>>(d, n);
  int* h = (int*) malloc(n * sizeof(int));
  cudaMemcpy(h, d, n * sizeof(int), cudaMemcpyDeviceToHost);
  int s = 0;
  for (int i = 0; i < n; i++) s += h[i];
  printf("%d\n", s);
  return 0;
}
)");
  return repo;
}

Repo kokkos_repo() {
  Repo repo;
  repo.write("CMakeLists.txt",
             "cmake_minimum_required(VERSION 3.16)\n"
             "project(app LANGUAGES CXX)\n"
             "set(CMAKE_CXX_STANDARD 17)\n"
             "find_package(Kokkos REQUIRED)\n"
             "add_executable(app main.cpp)\n"
             "target_link_libraries(app PRIVATE Kokkos::kokkos)\n");
  repo.write("main.cpp", R"(
#include <Kokkos_Core.hpp>
#include <stdio.h>
int main() {
  Kokkos::initialize();
  {
    Kokkos::View<double*> v("v", 10);
    Kokkos::parallel_for(10, KOKKOS_LAMBDA(int i) { v(i) = i; });
    double s = 0.0;
    Kokkos::parallel_reduce(10, KOKKOS_LAMBDA(int i, double& acc) {
      acc += v(i);
    }, s);
    printf("%.0f\n", s);
  }
  Kokkos::finalize();
  return 0;
}
)");
  return repo;
}

}  // namespace

// --------------------------------------------------------- makefile -----

TEST(Makefile, ParsesVariablesRulesPhony) {
  pareval::minic::DiagBag diags;
  const auto mk = bs::parse_makefile(
      "CXX = g++\nFLAGS := -O2\nFLAGS += -g\n"
      ".PHONY: all clean\n"
      "all: app\n"
      "app: main.cpp\n"
      "\t$(CXX) $(FLAGS) main.cpp -o $@\n",
      "Makefile", diags);
  ASSERT_TRUE(mk.has_value()) << diags.render();
  EXPECT_EQ(mk->variables.at("CXX"), "g++");
  EXPECT_EQ(mk->variables.at("FLAGS"), "-O2 -g");
  EXPECT_EQ(mk->default_target, "all");
  ASSERT_NE(mk->find_rule("app"), nullptr);
  EXPECT_EQ(mk->find_rule("app")->deps[0], "main.cpp");
}

TEST(Makefile, SpacesInsteadOfTabIsMissingSeparator) {
  pareval::minic::DiagBag diags;
  const auto mk = bs::parse_makefile(
      "all: app\n    g++ main.cpp -o app\n", "Makefile", diags);
  EXPECT_FALSE(mk.has_value());
  EXPECT_TRUE(has_category(diags, DiagCategory::MakefileSyntax));
}

TEST(Makefile, RecipeBeforeTargetIsError) {
  pareval::minic::DiagBag diags;
  const auto mk =
      bs::parse_makefile("\tg++ main.cpp\nall:\n", "Makefile", diags);
  EXPECT_FALSE(mk.has_value());
  EXPECT_TRUE(has_category(diags, DiagCategory::MakefileSyntax));
}

TEST(Makefile, ExpandVarsRecursiveAndAutomatic) {
  pareval::minic::DiagBag diags;
  std::map<std::string, std::string> vars = {
      {"A", "$(B) end"}, {"B", "start"}, {"@", "target.o"}};
  EXPECT_EQ(bs::expand_vars("$(A) $@", vars, diags, "Makefile"),
            "start end target.o");
  EXPECT_EQ(bs::expand_vars("$(UNKNOWN)x", vars, diags, "Makefile"), "x");
  EXPECT_FALSE(diags.has_errors());
}

TEST(Makefile, PlanOrdersDependenciesFirst) {
  pareval::minic::DiagBag diags;
  const auto mk = bs::parse_makefile(
      "all: app\n"
      "app: a.o b.o\n"
      "\tg++ a.o b.o -o app\n"
      "a.o: a.cpp\n"
      "\tg++ -c a.cpp -o a.o\n"
      "b.o: b.cpp\n"
      "\tg++ -c b.cpp -o b.o\n",
      "Makefile", diags);
  ASSERT_TRUE(mk.has_value());
  const auto plan =
      bs::plan_make(*mk, "", {"a.cpp", "b.cpp"}, "Makefile", diags);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_TRUE(plan[0].line.find("-c a.cpp") != std::string::npos);
  EXPECT_TRUE(plan[2].line.find("-o app") != std::string::npos);
}

TEST(Makefile, MissingRuleIsMissingBuildTarget) {
  pareval::minic::DiagBag diags;
  const auto mk = bs::parse_makefile(
      "app: missing.o\n\tg++ missing.o -o app\n", "Makefile", diags);
  ASSERT_TRUE(mk.has_value());
  bs::plan_make(*mk, "", {}, "Makefile", diags);
  EXPECT_TRUE(has_category(diags, DiagCategory::MissingBuildTarget));
}

TEST(Makefile, RequestedTargetAbsent) {
  pareval::minic::DiagBag diags;
  const auto mk =
      bs::parse_makefile("all:\n\techo hi\n", "Makefile", diags);
  ASSERT_TRUE(mk.has_value());
  bs::plan_make(*mk, "app", {}, "Makefile", diags);
  EXPECT_TRUE(has_category(diags, DiagCategory::MissingBuildTarget));
}

// --------------------------------------------------------- toolchain ----

TEST(Toolchain, ShellSplitHonoursQuotes) {
  const auto t = bs::shell_split("g++ -DNAME=\"two words\" main.cpp");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "-DNAME=two words");
}

TEST(Toolchain, ClassifiesTools) {
  EXPECT_EQ(bs::classify_tool("nvcc"), bs::Tool::Nvcc);
  EXPECT_EQ(bs::classify_tool("/usr/bin/clang++-19"), bs::Tool::Clang);
  EXPECT_EQ(bs::classify_tool("g++"), bs::Tool::Gcc);
  EXPECT_EQ(bs::classify_tool("rm"), bs::Tool::Unknown);
}

TEST(Toolchain, ClangOffloadFlagsEnableOffload) {
  pareval::minic::DiagBag diags;
  const auto inv = bs::parse_invocation(
      bs::shell_split("clang++ -O2 -fopenmp "
                      "-fopenmp-targets=nvptx64-nvidia-cuda main.cpp -o app"),
      "build", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  EXPECT_TRUE(inv.caps.openmp);
  EXPECT_TRUE(inv.caps.offload);
}

TEST(Toolchain, OffloadWithoutOpenmpIsInvalidFlag) {
  pareval::minic::DiagBag diags;
  bs::parse_invocation(
      bs::shell_split(
          "clang++ -fopenmp-targets=nvptx64-nvidia-cuda main.cpp -o app"),
      "build", diags);
  EXPECT_TRUE(has_category(diags, DiagCategory::InvalidCompilerFlag));
}

TEST(Toolchain, BadOffloadTripleIsInvalidFlag) {
  pareval::minic::DiagBag diags;
  bs::parse_invocation(
      bs::shell_split("clang++ -fopenmp -fopenmp-targets=nvptx-cuda "
                      "main.cpp -o app"),
      "build", diags);
  EXPECT_TRUE(has_category(diags, DiagCategory::InvalidCompilerFlag));
}

TEST(Toolchain, WrongVendorTripleBuildsWithoutDeviceSupport) {
  pareval::minic::DiagBag diags;
  const auto inv = bs::parse_invocation(
      bs::shell_split("clang++ -fopenmp -fopenmp-targets=amdgcn-amd-amdhsa "
                      "main.cpp -o app"),
      "build", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(inv.caps.openmp);
  EXPECT_FALSE(inv.caps.offload);  // builds; cannot launch on the A100
}

TEST(Toolchain, UnknownFlagRejected) {
  pareval::minic::DiagBag diags;
  bs::parse_invocation(bs::shell_split("g++ -qopenmp main.cpp -o app"),
                       "build", diags);
  EXPECT_TRUE(has_category(diags, DiagCategory::InvalidCompilerFlag));
}

TEST(Toolchain, GccRejectsOffloadFlag) {
  pareval::minic::DiagBag diags;
  bs::parse_invocation(
      bs::shell_split("g++ -fopenmp --offload-arch=sm_80 main.cpp -o app"),
      "build", diags);
  EXPECT_TRUE(has_category(diags, DiagCategory::InvalidCompilerFlag));
}

TEST(Toolchain, BadSmArchRejected) {
  pareval::minic::DiagBag diags;
  bs::parse_invocation(
      bs::shell_split("nvcc -arch=sm80 main.cu -o app"), "build", diags);
  EXPECT_TRUE(has_category(diags, DiagCategory::InvalidCompilerFlag));
}

TEST(Toolchain, CudaSourceNeedsNvcc) {
  pareval::minic::DiagBag diags;
  bs::parse_invocation(bs::shell_split("g++ main.cu -o app"), "build",
                       diags);
  EXPECT_TRUE(has_category(diags, DiagCategory::InvalidCompilerFlag));
}

TEST(Toolchain, DefinesParsed) {
  pareval::minic::DiagBag diags;
  const auto inv = bs::parse_invocation(
      bs::shell_split("g++ -DN=64 -DVERIFY main.cpp -o app"), "build",
      diags);
  ASSERT_EQ(inv.defines.size(), 2u);
  EXPECT_EQ(inv.defines[0].first, "N");
  EXPECT_EQ(inv.defines[0].second, "64");
  EXPECT_EQ(inv.defines[1].second, "1");
}

// ------------------------------------------------------------- cmake ----

TEST(CMake, ConfiguresKokkosProject) {
  pareval::minic::DiagBag diags;
  const auto proj = bs::configure_cmake(
      kokkos_repo().at("CMakeLists.txt"), "CMakeLists.txt", diags);
  ASSERT_TRUE(proj.has_value()) << diags.render();
  EXPECT_EQ(proj->project_name, "app");
  ASSERT_EQ(proj->targets.size(), 1u);
  EXPECT_EQ(proj->targets[0].link_libraries[0], "Kokkos::kokkos");
}

TEST(CMake, FindPackageIsCaseSensitive) {
  pareval::minic::DiagBag diags;
  const auto proj = bs::configure_cmake(
      "cmake_minimum_required(VERSION 3.16)\nproject(x)\n"
      "find_package(kokkos REQUIRED)\nadd_executable(x main.cpp)\n",
      "CMakeLists.txt", diags);
  EXPECT_FALSE(proj.has_value());
  EXPECT_TRUE(has_category(diags, DiagCategory::CMakeConfig));
}

TEST(CMake, UnknownCommandIsConfigError) {
  pareval::minic::DiagBag diags;
  const auto proj = bs::configure_cmake(
      "project(x)\nadd_exectuable(x main.cpp)\n", "CMakeLists.txt", diags);
  EXPECT_FALSE(proj.has_value());
  EXPECT_TRUE(has_category(diags, DiagCategory::CMakeConfig));
}

TEST(CMake, MissingProjectIsConfigError) {
  pareval::minic::DiagBag diags;
  const auto proj = bs::configure_cmake("add_executable(x main.cpp)\n",
                                        "CMakeLists.txt", diags);
  EXPECT_FALSE(proj.has_value());
  EXPECT_TRUE(has_category(diags, DiagCategory::CMakeConfig));
}

TEST(CMake, UnbalancedParensIsSyntaxError) {
  pareval::minic::DiagBag diags;
  const auto proj = bs::configure_cmake(
      "project(x\nadd_executable(x main.cpp)\n", "CMakeLists.txt", diags);
  EXPECT_FALSE(proj.has_value());
  EXPECT_TRUE(has_category(diags, DiagCategory::MakefileSyntax));
}

TEST(CMake, LinkingUnfoundImportedTargetIsConfigError) {
  pareval::minic::DiagBag diags;
  const auto proj = bs::configure_cmake(
      "project(x)\nadd_executable(x main.cpp)\n"
      "target_link_libraries(x Kokkos::kokkos)\n",  // no find_package
      "CMakeLists.txt", diags);
  EXPECT_FALSE(proj.has_value());
  EXPECT_TRUE(has_category(diags, DiagCategory::CMakeConfig));
}

TEST(CMake, VariableExpansionInSet) {
  pareval::minic::DiagBag diags;
  const auto proj = bs::configure_cmake(
      "project(x)\nset(SRC main.cpp)\nadd_executable(x ${SRC})\n",
      "CMakeLists.txt", diags);
  ASSERT_TRUE(proj.has_value()) << diags.render();
  EXPECT_EQ(proj->targets[0].sources[0], "main.cpp");
}

// ----------------------------------------------------- end-to-end -------

TEST(Builder, CudaMakefileBuildsAndRuns) {
  const auto result = bs::build_repo(cuda_repo());
  ASSERT_TRUE(result.ok) << result.log;
  EXPECT_EQ(result.build_system, "make");
  EXPECT_TRUE(result.caps.cuda);
  const auto run = run_executable(*result.exe, {});
  EXPECT_TRUE(run.ok) << run.stderr_text;
  EXPECT_EQ(run.stdout_text, "56\n");
  EXPECT_EQ(run.stats.device_kernel_launches, 1);
}

TEST(Builder, KokkosCmakeBuildsAndRuns) {
  const auto result = bs::build_repo(kokkos_repo());
  ASSERT_TRUE(result.ok) << result.log;
  EXPECT_EQ(result.build_system, "cmake");
  EXPECT_TRUE(result.caps.kokkos);
  const auto run = run_executable(*result.exe, {});
  EXPECT_TRUE(run.ok) << run.stderr_text;
  EXPECT_EQ(run.stdout_text, "45\n");
}

TEST(Builder, TabsToSpacesBreaksBuild) {
  // The SWE-agent failure mode (§3.3): replace recipe TABs with spaces.
  Repo repo = cuda_repo();
  std::string mk = repo.at("Makefile");
  mk = pareval::support::replace_all(mk, "\t", "    ");
  repo.write("Makefile", mk);
  const auto result = bs::build_repo(repo);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_category(result.diags, DiagCategory::MakefileSyntax));
}

TEST(Builder, MissingBuildSystem) {
  Repo repo;
  repo.write("main.cpp", "int main() { return 0; }");
  const auto result = bs::build_repo(repo);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_category(result.diags, DiagCategory::MissingBuildTarget));
}

TEST(Builder, SourceCompileErrorFailsBuildWithLog) {
  Repo repo = cuda_repo();
  repo.write("src/main.cu",
             "__global__ void k(int* p) { undeclared_fn(p); }\n"
             "int main() { k<<<1,1>>>(0); return 0; }\n");
  const auto result = bs::build_repo(repo);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_category(result.diags, DiagCategory::UndeclaredIdentifier));
  EXPECT_NE(result.log.find("undeclared"), std::string::npos);
}

TEST(Builder, SeparateCompileAndLink) {
  Repo repo;
  repo.write("Makefile",
             "all: app\n"
             "app: main.o util.o\n"
             "\tg++ main.o util.o -o app\n"
             "main.o: main.cpp\n"
             "\tg++ -c main.cpp -o main.o\n"
             "util.o: util.cpp\n"
             "\tg++ -c util.cpp -o util.o\n");
  repo.write("util.cpp", "int triple(int x) { return 3 * x; }\n");
  repo.write("main.cpp",
             "#include <stdio.h>\nint triple(int x);\n"
             "int main() { printf(\"%d\\n\", triple(5)); return 0; }\n");
  const auto result = bs::build_repo(repo);
  ASSERT_TRUE(result.ok) << result.log;
  EXPECT_EQ(run_executable(*result.exe, {}).stdout_text, "15\n");
}

TEST(Builder, UndefinedReferenceAcrossObjects) {
  Repo repo;
  repo.write("Makefile",
             "all: app\napp: main.cpp\n\tg++ main.cpp -o app\n");
  repo.write("main.cpp",
             "int triple(int x);\nint main() { return triple(2); }\n");
  const auto result = bs::build_repo(repo);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_category(result.diags, DiagCategory::LinkError));
}

TEST(Builder, UnknownLibraryIsLinkError) {
  Repo repo;
  repo.write("Makefile",
             "all: app\napp: main.cpp\n\tg++ main.cpp -lnotalib -o app\n");
  repo.write("main.cpp", "int main() { return 0; }\n");
  const auto result = bs::build_repo(repo);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(has_category(result.diags, DiagCategory::LinkError));
}

TEST(Builder, OmpOffloadViaClangRunsOnDevice) {
  Repo repo;
  repo.write("Makefile",
             "CXX = clang++\n"
             "FLAGS = -O2 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda\n"
             "all: app\n"
             "app: main.cpp\n"
             "\t$(CXX) $(FLAGS) main.cpp -o app\n");
  repo.write("main.cpp", R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  int n = 10;
  double* a = (double*) malloc(n * sizeof(double));
#pragma omp target teams distribute parallel for map(from: a[0:n])
  for (int i = 0; i < n; i++) a[i] = i + 1.0;
  double s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  printf("%.0f\n", s);
  return 0;
}
)");
  const auto result = bs::build_repo(repo);
  ASSERT_TRUE(result.ok) << result.log;
  const auto run = run_executable(*result.exe, {});
  EXPECT_EQ(run.stdout_text, "55\n");
  EXPECT_GE(run.stats.device_kernel_launches, 1);
}

TEST(Builder, MissingOffloadFlagRunsOnHostOnly) {
  Repo repo;
  repo.write("Makefile",
             "all: app\napp: main.cpp\n"
             "\tclang++ -fopenmp main.cpp -o app\n");
  repo.write("main.cpp", R"(
#include <stdio.h>
#include <stdlib.h>
int main() {
  int n = 10;
  double* a = (double*) malloc(n * sizeof(double));
#pragma omp target teams distribute parallel for map(from: a[0:n])
  for (int i = 0; i < n; i++) a[i] = i + 1.0;
  printf("%.0f\n", a[0]);
  return 0;
}
)");
  const auto result = bs::build_repo(repo);
  ASSERT_TRUE(result.ok) << result.log;
  const auto run = run_executable(*result.exe, {});
  EXPECT_TRUE(run.ok);
  EXPECT_EQ(run.stats.device_kernel_launches, 0);  // host fallback
}

// ------------------------------------------- resolved-file reporting ----
// The preprocessor reports the exact repo input set of every TU compile
// (resolved_files + missing_probes) — the TU compile cache keys on it, so
// these seed-corpus edge cases pin what "the input set" means.

TEST(ResolvedFiles, QuotedIncludeFallbackToSystemHeader) {
  // A quoted include that misses the repo falls back to the system search
  // path: it must land in system_headers, NOT in resolved_files, and the
  // repo paths that were probed must be recorded as missing — if one of
  // them appears later, the include resolves differently.
  pareval::vfs::Repo repo;
  repo.write("src/main.cpp",
             "#include \"stdio.h\"\n"
             "int main() { printf(\"x\\n\"); return 0; }\n");
  pareval::minic::PreprocessOptions opt;
  opt.available_system_headers = pareval::minic::base_system_headers();
  const auto pp = pareval::minic::preprocess(repo, "src/main.cpp", opt);
  ASSERT_FALSE(pp.diags.has_errors()) << pp.diags.render();
  EXPECT_EQ(pp.resolved_files,
            std::vector<std::string>{"src/main.cpp"});
  EXPECT_EQ(pp.system_headers.count("stdio.h"), 1u);
  // Both quoted-include candidates were probed and absent.
  EXPECT_EQ(pp.missing_probes.count("src/stdio.h"), 1u);
  EXPECT_EQ(pp.missing_probes.count("stdio.h"), 1u);
}

TEST(ResolvedFiles, IncludeOnceListsEachFileOnce) {
  // util.h is reachable twice (directly and through a.h); include-once
  // semantics must list it exactly once, in first-inclusion order.
  pareval::vfs::Repo repo;
  repo.write("main.cpp",
             "#include \"a.h\"\n#include \"util.h\"\n"
             "int main() { return util_value(); }\n");
  repo.write("a.h", "#include \"util.h\"\n");
  repo.write("util.h", "int util_value() { return 0; }\n");
  pareval::minic::PreprocessOptions opt;
  opt.available_system_headers = pareval::minic::base_system_headers();
  const auto pp = pareval::minic::preprocess(repo, "main.cpp", opt);
  ASSERT_FALSE(pp.diags.has_errors()) << pp.diags.render();
  const std::vector<std::string> want = {"main.cpp", "a.h", "util.h"};
  EXPECT_EQ(pp.resolved_files, want);
}

TEST(ResolvedFiles, TransitiveIncludesInFirstInclusionOrder) {
  pareval::vfs::Repo repo;
  repo.write("src/main.cpp", "#include \"inc/top.h\"\nint main() { return V; }\n");
  repo.write("src/inc/top.h", "#include \"deep.h\"\n");
  repo.write("src/inc/deep.h", "#define V 0\n");
  pareval::minic::PreprocessOptions opt;
  opt.available_system_headers = pareval::minic::base_system_headers();
  const auto pp = pareval::minic::preprocess(repo, "src/main.cpp", opt);
  ASSERT_FALSE(pp.diags.has_errors()) << pp.diags.render();
  const std::vector<std::string> want = {"src/main.cpp", "src/inc/top.h",
                                         "src/inc/deep.h"};
  EXPECT_EQ(pp.resolved_files, want);
}

TEST(ResolvedFiles, SurfacedOnTranslationUnits) {
  // compile_tu copies the preprocessor's report onto the TU, so the
  // builder (and the TU cache under it) can key without re-preprocessing.
  pareval::vfs::Repo repo;
  repo.write("main.cpp",
             "#include <stdio.h>\n#include \"util.h\"\n"
             "int main() { printf(\"%d\\n\", util_value()); return 0; }\n");
  repo.write("util.h", "int util_value() { return 7; }\n");
  const auto tu = pareval::execsim::compile_tu(
      repo, "main.cpp", pareval::minic::Capabilities{}, {});
  ASSERT_FALSE(tu->diags.has_errors()) << tu->diags.render();
  const std::vector<std::string> want = {"main.cpp", "util.h"};
  EXPECT_EQ(tu->resolved_files, want);
  EXPECT_TRUE(tu->missing_probes.empty());
}

TEST(ResolvedFiles, MixedCompileOnlyPlanReportsPerTuSets) {
  // A mixed -c + link plan: each object's TU carries its own resolved
  // set; the linked program exposes them all.
  pareval::vfs::Repo repo;
  repo.write("Makefile",
             "all: app\n"
             "app: main.o util.o\n"
             "\tg++ main.o util.o -o app\n"
             "main.o: main.cpp\n"
             "\tg++ -c main.cpp -o main.o\n"
             "util.o: util.cpp\n"
             "\tg++ -c util.cpp -o util.o\n");
  repo.write("main.cpp",
             "#include \"shared.h\"\nint triple(int);\n"
             "int main() { return triple(SEVEN) - 21; }\n");
  repo.write("util.cpp",
             "#include \"shared.h\"\nint triple(int x) { return 3 * x; }\n");
  repo.write("shared.h", "#define SEVEN 7\n");
  const auto result = bs::build_repo(repo);
  ASSERT_TRUE(result.ok) << result.log;
  ASSERT_EQ(result.exe->program.tus.size(), 2u);
  std::vector<std::vector<std::string>> sets;
  for (const auto& tu : result.exe->program.tus) {
    sets.push_back(tu->resolved_files);
  }
  std::sort(sets.begin(), sets.end());
  const std::vector<std::vector<std::string>> want = {
      {"main.cpp", "shared.h"}, {"util.cpp", "shared.h"}};
  auto sorted_want = want;
  std::sort(sorted_want.begin(), sorted_want.end());
  EXPECT_EQ(sets, sorted_want);
}
