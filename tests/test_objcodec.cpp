// Warm-object codec tests: TU and chunk payload round trips are
// bit-identical (encode -> decode -> re-encode equality over the whole
// seed corpus), any torn / bit-flipped / version-bumped payload decodes
// to a clean cold miss (never a wrong object), and the end-to-end
// warm-object store (obj1 + lnk1 streams through a cache::Store) rebuilds
// a repository with zero source parses and zero links while producing a
// bit-identical BuildResult.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "buildsim/builder.hpp"
#include "buildsim/linkcache.hpp"
#include "buildsim/tucache.hpp"
#include "execsim/driver.hpp"
#include "execsim/registry.hpp"
#include "minic/bytecode.hpp"
#include "minic/objcodec.hpp"
#include "minic/runio.hpp"
#include "support/cachestore.hpp"
#include "translate/transpile.hpp"

using namespace pareval;
using buildsim::LinkCache;
using buildsim::TuCompileCache;

namespace {

std::string temp_store_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

/// Every successfully linked seed implementation (the population the
/// object store persists).
std::vector<buildsim::BuildResult> seed_builds() {
  std::vector<buildsim::BuildResult> builds;
  for (const apps::AppSpec* app : apps::all_apps()) {
    for (const apps::Model m : app->available) {
      auto build = buildsim::build_repo(app->repos.at(m));
      if (build.ok) builds.push_back(std::move(build));
    }
  }
  return builds;
}

}  // namespace

TEST(ObjCodec, TuRoundTripIsBitIdentical) {
  std::size_t tus = 0;
  for (const auto& build : seed_builds()) {
    for (const auto& tu : build.exe->program.tus) {
      const std::string first = minic::encode_tu(*tu);
      ASSERT_FALSE(first.empty());
      const auto decoded = minic::decode_tu(first);
      ASSERT_NE(decoded, nullptr);
      // Re-encoding the decoded TU must reproduce the payload byte for
      // byte — the codec is a bijection on everything it persists.
      EXPECT_EQ(minic::encode_tu(*decoded), first);
      ++tus;
    }
  }
  EXPECT_GT(tus, 0u);
}

TEST(ObjCodec, DecodedTuCompilesIdenticalChunks) {
  for (const auto& build : seed_builds()) {
    const auto& exe = *build.exe;
    const auto builtins = execsim::make_builtin_table(exe.program.caps);
    const minic::NodeTable nodes =
        minic::NodeTable::build(exe.program.tus);
    // Round-trip the TUs, relink, and compare each function's compiled
    // chunk bytes against the original program's: decoded ASTs must be
    // semantically indistinguishable inputs to the bytecode compiler.
    std::vector<std::shared_ptr<minic::TranslationUnit>> decoded;
    for (const auto& tu : exe.program.tus) {
      auto copy = minic::decode_tu(minic::encode_tu(*tu));
      ASSERT_NE(copy, nullptr);
      decoded.push_back(std::move(copy));
    }
    auto relinked = execsim::link_tus(decoded, exe.program.caps);
    ASSERT_TRUE(relinked.ok());
    const auto builtins2 =
        execsim::make_builtin_table(relinked.program.caps);
    const minic::NodeTable nodes2 =
        minic::NodeTable::build(relinked.program.tus);
    for (const auto& [name, fn] : exe.program.functions) {
      minic::ChunkPack pack;
      minic::BinWriter original;
      ASSERT_TRUE(minic::encode_chunk(
          pack.get_or_compile(*fn, exe.program, builtins), nodes,
          original));
      const auto it = relinked.program.functions.find(name);
      ASSERT_NE(it, relinked.program.functions.end());
      minic::ChunkPack pack2;
      minic::BinWriter rebuilt;
      ASSERT_TRUE(minic::encode_chunk(
          pack2.get_or_compile(*it->second, relinked.program, builtins2),
          nodes2, rebuilt));
      EXPECT_EQ(original.bytes(), rebuilt.bytes()) << name;
    }
  }
}

TEST(ObjCodec, ChunkRoundTripIsBitIdentical) {
  for (const auto& build : seed_builds()) {
    const auto& exe = *build.exe;
    const auto builtins = execsim::make_builtin_table(exe.program.caps);
    const minic::NodeTable nodes =
        minic::NodeTable::build(exe.program.tus);
    minic::ChunkPack pack;
    for (const auto& [name, fn] : exe.program.functions) {
      minic::BinWriter w;
      ASSERT_TRUE(minic::encode_chunk(
          pack.get_or_compile(*fn, exe.program, builtins), nodes, w));
      minic::BinReader r(w.bytes());
      minic::Chunk decoded;
      ASSERT_TRUE(minic::decode_chunk(r, nodes, builtins, &decoded));
      ASSERT_TRUE(r.ok() && r.at_end());
      minic::BinWriter again;
      ASSERT_TRUE(minic::encode_chunk(decoded, nodes, again));
      EXPECT_EQ(again.bytes(), w.bytes()) << name;
    }
  }
}

TEST(ObjCodec, TruncatedPayloadIsACleanMiss) {
  const auto builds = seed_builds();
  ASSERT_FALSE(builds.empty());
  const std::string payload =
      minic::encode_tu(*builds.front().exe->program.tus.front());
  // Every proper prefix must decode to nullptr — a torn journal record
  // can never resurrect as a wrong TU.
  for (std::size_t len = 0; len < payload.size();
       len += (payload.size() / 64) + 1) {
    EXPECT_EQ(minic::decode_tu(payload.substr(0, len)), nullptr) << len;
  }
}

TEST(ObjCodec, BitFlippedPayloadIsACleanMiss) {
  const auto builds = seed_builds();
  ASSERT_FALSE(builds.empty());
  const std::string payload =
      minic::encode_tu(*builds.front().exe->program.tus.front());
  // A strided sample of single-bit corruptions across the payload
  // (header, seal, and body): the content hash must reject all of them.
  for (std::size_t pos = 0; pos < payload.size();
       pos += (payload.size() / 97) + 1) {
    std::string corrupt = payload;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    EXPECT_EQ(minic::decode_tu(corrupt), nullptr) << pos;
  }
}

TEST(ObjCodec, VersionBumpedPayloadIsACleanMiss) {
  const auto builds = seed_builds();
  ASSERT_FALSE(builds.empty());
  const std::string payload =
      minic::encode_tu(*builds.front().exe->program.tus.front());
  // The format version is the u32 after the 4-byte magic; a payload from
  // any other codec version must cold-miss, not misparse.
  std::string bumped = payload;
  ASSERT_GT(bumped.size(), 8u);
  bumped[4] = static_cast<char>(bumped[4] + 1);
  EXPECT_EQ(minic::decode_tu(bumped), nullptr);
}

TEST(ObjCodec, ObjStreamVersionFoldsTheFormatVersion) {
  // Same pipeline, different codec format -> different stream version:
  // a codec bump cold-starts obj1/lnk1 without touching legacy streams.
  EXPECT_NE(minic::obj_stream_version(1234), 1234u);
  EXPECT_NE(minic::obj_stream_version(1), minic::obj_stream_version(2));
}

TEST(ObjCodec, WarmStoreRebuildsWithZeroParsesAndZeroLinks) {
  const std::string dir = temp_store_dir("obj_warm_store");
  constexpr std::uint64_t kVersion = 77;
  const apps::AppSpec* app = apps::all_apps().front();
  const vfs::Repo& repo = app->repos.at(app->available.front());

  // Cold pass: build through fresh caches attached to the store, flush.
  buildsim::BuildResult cold;
  {
    cache::Store store(dir);
    ASSERT_TRUE(store.open());
    TuCompileCache tus;
    LinkCache links;
    tus.attach(store, kVersion);
    links.attach(store, kVersion);
    cold = buildsim::build_repo(repo, "", &tus, std::nullopt, &links);
    ASSERT_TRUE(cold.ok);
    EXPECT_GT(tus.flush(), 0u);
    EXPECT_GT(links.flush(), 0u);
  }

  // Warm pass: brand-new caches replay the store; the whole front end
  // (parse + sema + link) must be elided.
  cache::Store store(dir);
  TuCompileCache tus;
  LinkCache links;
  ASSERT_TRUE(tus.attach(store, kVersion));
  ASSERT_TRUE(links.attach(store, kVersion));
  const execsim::DriverCounters before = execsim::driver_counters();
  const auto warm = buildsim::build_repo(repo, "", &tus, std::nullopt,
                                         &links);
  const execsim::DriverCounters after = execsim::driver_counters();
  EXPECT_EQ(after.parses, before.parses);
  EXPECT_EQ(after.links, before.links);
  EXPECT_GT(tus.obj_hits(), 0u);
  // A fresh cache serves the link from its replayed payload.
  EXPECT_EQ(links.persisted_hits(), 1u);
  EXPECT_EQ(links.misses(), 0u);

  // The warm BuildResult is observably identical to the cold one.
  EXPECT_TRUE(warm.ok);
  EXPECT_EQ(warm.log, cold.log);
  EXPECT_EQ(warm.build_system, cold.build_system);
  EXPECT_EQ(warm.diags.all().size(), cold.diags.all().size());
  ASSERT_TRUE(warm.exe.has_value());
  // ...and its executable runs the app's tests bit-identically, under
  // both engines (the decoded chunks drive the VM directly).
  for (const auto& tc : app->tests) {
    const auto ref = execsim::run_executable(*cold.exe, tc.args);
    for (const auto engine :
         {minic::EngineKind::Interp, minic::EngineKind::Vm}) {
      const auto got = execsim::run_executable(*warm.exe, tc.args,
                                               minic::RunLimits{}, engine);
      EXPECT_EQ(minic::to_json(got).dump(), minic::to_json(ref).dump());
    }
  }

  // A different pipeline version cold-starts the object streams.
  TuCompileCache stale_tus;
  LinkCache stale_links;
  cache::Store stale(dir);
  EXPECT_FALSE(stale_tus.attach(stale, kVersion + 1));
  EXPECT_FALSE(stale_links.attach(stale, kVersion + 1));
  EXPECT_EQ(stale_links.size(), 0u);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(ObjCodec, WarmLinkDecodesLambdaChunksAndRunsBitIdentical) {
  // A Kokkos implementation's link payload carries its lambda-body chunks
  // too: the warm decode pre-fills the pack, and both engines — the VM
  // (which would have compiled them anyway) and the tree-walker (which
  // only ever *reuses* warm chunks) — run the decoded executable
  // bit-identically to a cold build. No app ships a Kokkos repo directly;
  // the reference transpiler produces one from the CUDA sources.
  const apps::AppSpec* app = apps::find_app("nanoXOR");
  ASSERT_NE(app, nullptr);
  xlate::TranspileLog xlog;
  const vfs::Repo repo = xlate::transpile_repo(
      *app, apps::Model::Cuda, apps::Model::Kokkos, xlog);

  const std::string dir = temp_store_dir("obj_warm_lambda");
  constexpr std::uint64_t kVersion = 79;
  buildsim::BuildResult cold;
  {
    cache::Store store(dir);
    ASSERT_TRUE(store.open());
    TuCompileCache tus;
    LinkCache links;
    tus.attach(store, kVersion);
    links.attach(store, kVersion);
    cold = buildsim::build_repo(repo, "", &tus, std::nullopt, &links);
    ASSERT_TRUE(cold.ok);
    // Force the lambda chunks into the payload even though no VM run
    // compiled them yet: encode_link compiles on demand.
    ASSERT_GT(links.flush(), 0u);
    tus.flush();
  }

  cache::Store store(dir);
  TuCompileCache tus;
  LinkCache links;
  ASSERT_TRUE(tus.attach(store, kVersion));
  ASSERT_TRUE(links.attach(store, kVersion));
  const auto warm = buildsim::build_repo(repo, "", &tus, std::nullopt,
                                         &links);
  ASSERT_TRUE(warm.ok);
  ASSERT_TRUE(warm.exe.has_value());
  // The decode really did pre-fill lambda chunks (Kokkos apps launch
  // lambdas by construction).
  EXPECT_GT(warm.exe->chunks->lambda_size(), 0u);

  for (const auto& tc : app->tests) {
    const auto ref = execsim::run_executable(*cold.exe, tc.args);
    for (const auto engine :
         {minic::EngineKind::Interp, minic::EngineKind::Vm}) {
      const auto got = execsim::run_executable(*warm.exe, tc.args,
                                               minic::RunLimits{}, engine);
      EXPECT_EQ(minic::to_json(got).dump(), minic::to_json(ref).dump())
          << apps::model_key(apps::Model::Kokkos) << " engine "
          << minic::engine_key(engine);
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(ObjCodec, CorruptLinkJournalDegradesToAColdLink) {
  const std::string dir = temp_store_dir("obj_corrupt_lnk");
  constexpr std::uint64_t kVersion = 78;
  const apps::AppSpec* app = apps::all_apps().front();
  const vfs::Repo& repo = app->repos.at(app->available.front());
  {
    cache::Store store(dir);
    ASSERT_TRUE(store.open());
    TuCompileCache tus;
    LinkCache links;
    tus.attach(store, kVersion);
    links.attach(store, kVersion);
    ASSERT_TRUE(
        buildsim::build_repo(repo, "", &tus, std::nullopt, &links).ok);
    tus.flush();
    ASSERT_GT(links.flush(), 0u);
  }
  // Flip one byte in the middle of the lnk1 journal. Replay either drops
  // the record (CRC) or the payload fails its content hash at lookup —
  // both must degrade to a correct cold link, never a wrong executable.
  const std::string journal = dir + "/lnk1.journal";
  ASSERT_TRUE(std::filesystem::exists(journal));
  {
    std::fstream f(journal,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    ASSERT_GT(size, 32);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x41);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  cache::Store store(dir);
  TuCompileCache tus;
  LinkCache links;
  tus.attach(store, kVersion);
  links.attach(store, kVersion);
  const auto rebuilt =
      buildsim::build_repo(repo, "", &tus, std::nullopt, &links);
  EXPECT_TRUE(rebuilt.ok);
  ASSERT_TRUE(rebuilt.exe.has_value());
  for (const auto& tc : app->tests) {
    const auto run = execsim::run_executable(*rebuilt.exe, tc.args);
    EXPECT_FALSE(minic::to_json(run).dump().empty());
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
