#include <gtest/gtest.h>

#include <set>

#include "support/par.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace ps = pareval::support;

TEST(Rng, DeterministicForSameSeed) {
  ps::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  ps::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  ps::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  ps::Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  ps::Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  ps::Rng r(5);
  const std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 12000; ++i) {
    const std::size_t idx = r.weighted_index(w);
    ASSERT_LT(idx, w.size());
    counts[idx]++;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  ps::Rng r(5);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(r.weighted_index(w), w.size());
}

TEST(Rng, StableHashIsStable) {
  EXPECT_EQ(ps::stable_hash(std::string("abc")),
            ps::stable_hash(std::string("abc")));
  EXPECT_NE(ps::stable_hash(std::string("abc")),
            ps::stable_hash(std::string("abd")));
}

TEST(Rng, SplitProducesIndependentStreams) {
  ps::Rng parent(9);
  ps::Rng child = parent.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) {
    seen.insert(parent.next_u64());
    seen.insert(child.next_u64());
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Strings, Split) {
  const auto parts = ps::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitLinesHandlesCrlfAndTrailing) {
  const auto lines = ps::split_lines("one\r\ntwo\nthree\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[2], "three");
}

TEST(Strings, SplitWs) {
  const auto parts = ps::split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, Trim) {
  EXPECT_EQ(ps::trim("  x \t"), "x");
  EXPECT_EQ(ps::trim(""), "");
  EXPECT_EQ(ps::trim(" \n "), "");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(ps::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ps::replace_all("hello", "xyz", "q"), "hello");
}

TEST(Strings, FormatNumber) {
  EXPECT_EQ(ps::format_number(0.5, 2), "0.5");
  EXPECT_EQ(ps::format_number(3.0), "3");
  EXPECT_EQ(ps::format_number(0.123456, 2), "0.12");
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(ps::strfmt("%d-%s", 7, "x"), "7-x");
}

TEST(Table, RendersAlignedColumns) {
  ps::TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(HeatMap, EmptyCellsRenderBlank) {
  ps::HeatMap hm("title", {"r1", "r2"}, {"c1", "c2"});
  hm.set(0, 0, 0.5);
  EXPECT_FALSE(hm.at(1, 1).has_value());
  EXPECT_EQ(*hm.at(0, 0), 0.5);
  const std::string out = hm.render();
  EXPECT_NE(out.find("0.5"), std::string::npos);
}

TEST(HeatMap, OutOfRangeSetThrows) {
  ps::HeatMap hm("t", {"r"}, {"c"});
  EXPECT_THROW(hm.set(1, 0, 1.0), std::out_of_range);
}

TEST(HeatMap, SideBySideJoinsTitles) {
  ps::HeatMap a("left", {"r"}, {"c"});
  ps::HeatMap b("right", {"r"}, {"c"});
  const std::string out = ps::render_side_by_side({a, b});
  EXPECT_NE(out.find("left"), std::string::npos);
  EXPECT_NE(out.find("right"), std::string::npos);
}

TEST(Par, ParallelForCoversRange) {
  std::vector<int> hit(1000, 0);
  ps::parallel_for(0, hit.size(), [&](std::size_t i) { hit[i]++; });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(Par, ParallelForPropagatesException) {
  EXPECT_THROW(
      ps::parallel_for(0, 100,
                       [&](std::size_t i) {
                         if (i == 50) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(Par, EmptyRangeIsNoop) {
  ps::parallel_for(5, 5, [&](std::size_t) { FAIL(); });
}
