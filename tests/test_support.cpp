#include <gtest/gtest.h>

#include <set>

#include "support/json.hpp"
#include "support/par.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace ps = pareval::support;

TEST(Rng, DeterministicForSameSeed) {
  ps::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  ps::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  ps::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  ps::Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  ps::Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  ps::Rng r(5);
  const std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 12000; ++i) {
    const std::size_t idx = r.weighted_index(w);
    ASSERT_LT(idx, w.size());
    counts[idx]++;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  ps::Rng r(5);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(r.weighted_index(w), w.size());
}

TEST(Rng, StableHashIsStable) {
  EXPECT_EQ(ps::stable_hash(std::string("abc")),
            ps::stable_hash(std::string("abc")));
  EXPECT_NE(ps::stable_hash(std::string("abc")),
            ps::stable_hash(std::string("abd")));
}

TEST(Rng, SplitProducesIndependentStreams) {
  ps::Rng parent(9);
  ps::Rng child = parent.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) {
    seen.insert(parent.next_u64());
    seen.insert(child.next_u64());
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Strings, Split) {
  const auto parts = ps::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitLinesHandlesCrlfAndTrailing) {
  const auto lines = ps::split_lines("one\r\ntwo\nthree\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[2], "three");
}

TEST(Strings, SplitWs) {
  const auto parts = ps::split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, Trim) {
  EXPECT_EQ(ps::trim("  x \t"), "x");
  EXPECT_EQ(ps::trim(""), "");
  EXPECT_EQ(ps::trim(" \n "), "");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(ps::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ps::replace_all("hello", "xyz", "q"), "hello");
}

TEST(Strings, FormatNumber) {
  EXPECT_EQ(ps::format_number(0.5, 2), "0.5");
  EXPECT_EQ(ps::format_number(3.0), "3");
  EXPECT_EQ(ps::format_number(0.123456, 2), "0.12");
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(ps::strfmt("%d-%s", 7, "x"), "7-x");
}

TEST(Table, RendersAlignedColumns) {
  ps::TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(HeatMap, EmptyCellsRenderBlank) {
  ps::HeatMap hm("title", {"r1", "r2"}, {"c1", "c2"});
  hm.set(0, 0, 0.5);
  EXPECT_FALSE(hm.at(1, 1).has_value());
  EXPECT_EQ(*hm.at(0, 0), 0.5);
  const std::string out = hm.render();
  EXPECT_NE(out.find("0.5"), std::string::npos);
}

TEST(HeatMap, OutOfRangeSetThrows) {
  ps::HeatMap hm("t", {"r"}, {"c"});
  EXPECT_THROW(hm.set(1, 0, 1.0), std::out_of_range);
}

TEST(HeatMap, SideBySideJoinsTitles) {
  ps::HeatMap a("left", {"r"}, {"c"});
  ps::HeatMap b("right", {"r"}, {"c"});
  const std::string out = ps::render_side_by_side({a, b});
  EXPECT_NE(out.find("left"), std::string::npos);
  EXPECT_NE(out.find("right"), std::string::npos);
}

TEST(Par, ParallelForCoversRange) {
  std::vector<int> hit(1000, 0);
  ps::parallel_for(0, hit.size(), [&](std::size_t i) { hit[i]++; });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(Par, ParallelForPropagatesException) {
  EXPECT_THROW(
      ps::parallel_for(0, 100,
                       [&](std::size_t i) {
                         if (i == 50) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(Par, EmptyRangeIsNoop) {
  ps::parallel_for(5, 5, [&](std::size_t) { FAIL(); });
}

// --- Json -------------------------------------------------------------------

TEST(Json, ScalarRoundTrips) {
  for (const char* text :
       {"null", "true", "false", "0", "-7", "9223372036854775807",
        "\"hello\"", "1.5", "-0.25", "[]", "{}"}) {
    const auto j = ps::Json::parse(text);
    ASSERT_TRUE(j.has_value()) << text;
    EXPECT_EQ(j->dump(), text);
  }
}

TEST(Json, IntegersAreExact) {
  const auto j = ps::Json::parse("[9007199254740993,-9007199254740993]");
  ASSERT_TRUE(j.has_value());
  // Beyond double's 2^53 integer range: must not round.
  EXPECT_EQ(j->at(0).as_int(), 9007199254740993LL);
  EXPECT_EQ(j->at(1).as_int(), -9007199254740993LL);
}

TEST(Json, DoublesRoundTripBitExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 123456.789012345678, 1e-300,
                         -2.5e17, 3.0}) {
    const std::string text = ps::Json(v).dump();
    const auto back = ps::Json::parse(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(back->as_double(), v) << text;
    // "3.0" must stay a Double (not collapse to the Int 3) so that
    // operator== on round-tripped values holds.
    EXPECT_EQ(back->type(), ps::Json::Type::Double) << text;
  }
}

TEST(Json, StringEscapes) {
  const std::string nasty = "a\"b\\c\nd\te\x01f/\xc3\xa9";
  const std::string text = ps::Json(nasty).dump();
  const auto back = ps::Json::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_string(), nasty);

  // Escapes we accept but never emit.
  const auto unicode = ps::Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\\/\"");
  ASSERT_TRUE(unicode.has_value());
  EXPECT_EQ(unicode->as_string(), "A\xc3\xa9\xf0\x9f\x98\x80/");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  ps::Json obj = ps::Json::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("zebra", 3);  // replace keeps the original position
  EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"alpha\":2}");
  EXPECT_EQ(obj["zebra"].as_int(), 3);
  EXPECT_EQ(obj["missing"].type(), ps::Json::Type::Null);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, NestedStructureRoundTrip) {
  const char* text =
      "{\"a\":[1,2,{\"b\":\"c\"}],\"d\":{\"e\":[true,null,1.5]}}";
  const auto j = ps::Json::parse(text);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->dump(), text);
  EXPECT_EQ((*j)["a"].at(2)["b"].as_string(), "c");
  EXPECT_EQ((*j)["d"]["e"].size(), 3u);
}

TEST(Json, ParseErrorsAreRejected) {
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "01e",
        "1 2", "[1] trailing", "{\"a\" 1}", "\"\\q\"", "nan"}) {
    EXPECT_FALSE(ps::Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
    error.clear();
  }
  // Deep nesting is bounded, not a stack overflow.
  EXPECT_FALSE(
      ps::Json::parse(std::string(400, '[') + std::string(400, ']'))
          .has_value());
}
