#include <gtest/gtest.h>

#include "vfs/repo.hpp"

namespace pv = pareval::vfs;

TEST(Paths, Normalize) {
  EXPECT_EQ(pv::normalize_path("./src/../src/main.cpp"), "src/main.cpp");
  EXPECT_EQ(pv::normalize_path("/a/b"), "a/b");
  EXPECT_EQ(pv::normalize_path("a//b"), "a/b");
  EXPECT_THROW(pv::normalize_path("../x"), std::invalid_argument);
}

TEST(Paths, Components) {
  EXPECT_EQ(pv::dirname("src/a.cpp"), "src");
  EXPECT_EQ(pv::dirname("a.cpp"), "");
  EXPECT_EQ(pv::basename("src/a.cpp"), "a.cpp");
  EXPECT_EQ(pv::extension("src/a.cpp"), ".cpp");
  EXPECT_EQ(pv::extension("Makefile"), "");
  EXPECT_EQ(pv::extension(".gitignore"), "");
}

TEST(Paths, Join) {
  EXPECT_EQ(pv::join_path("src", "main.cpp"), "src/main.cpp");
  EXPECT_EQ(pv::join_path("", "main.cpp"), "main.cpp");
  EXPECT_EQ(pv::join_path("src/sub", "../main.cpp"), "src/main.cpp");
}

TEST(Repo, WriteReadRemove) {
  pv::Repo r;
  r.write("src/main.cpp", "int main() {}");
  EXPECT_TRUE(r.exists("src/main.cpp"));
  EXPECT_TRUE(r.exists("./src/main.cpp"));
  EXPECT_EQ(*r.read("src/main.cpp"), "int main() {}");
  EXPECT_FALSE(r.read("nope").has_value());
  EXPECT_THROW(r.at("nope"), std::out_of_range);
  EXPECT_TRUE(r.remove("src/main.cpp"));
  EXPECT_FALSE(r.remove("src/main.cpp"));
}

TEST(Repo, PathsSorted) {
  pv::Repo r;
  r.write("b.cpp", "");
  r.write("a.cpp", "");
  const auto p = r.paths();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], "a.cpp");
  EXPECT_EQ(p[1], "b.cpp");
}

TEST(Repo, TreeMatchesPaperFormat) {
  // The paper's Listing 1 shows:
  //   |-- Makefile
  //   |-- README.md
  //   +-- src/
  //       +-- main.cpp
  pv::Repo r;
  r.write("Makefile", "");
  r.write("README.md", "");
  r.write("src/main.cpp", "");
  const std::string tree = r.render_tree();
  EXPECT_EQ(tree,
            "|-- Makefile\n"
            "|-- README.md\n"
            "+-- src/\n"
            "    +-- main.cpp\n");
}

TEST(Repo, EqualityIsContentBased) {
  pv::Repo a, b;
  a.write("x", "1");
  b.write("x", "1");
  EXPECT_EQ(a, b);
  b.write("x", "2");
  EXPECT_NE(a, b);
}
