// cache::Store tests: CRC-framed journal round trips, torn-tail
// crash-injection recovery (a writer that died mid-append must cost only
// the torn tail, and recovery must land on the last good generation),
// CRC-rejected garbage records, record-level compaction (byte-stable
// replay across generation bumps), pipeline-version semantics, and
// multi-writer safety for N threads and N forked processes sharing one
// store directory.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "support/cachestore.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace pc = pareval::cache;
namespace ps = pareval::support;
using ps::Json;

namespace {

constexpr std::uint64_t kVersion = 0x1070;

std::string temp_store_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Json record(int id, const std::string& tag = "r") {
  Json j = Json::object();
  j.set("tag", tag);
  j.set("id", id);
  return j;
}

/// Replay `stream` and return every record's "id", in replay order.
std::vector<int> replay_ids(pc::Store& store, const std::string& stream,
                            std::uint64_t version = kVersion) {
  std::vector<int> ids;
  store.replay(stream, version, [&ids](const Json& r) {
    ids.push_back(static_cast<int>(r["id"].as_int()));
  });
  return ids;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void truncate_file(const std::string& path, std::size_t keep) {
  const std::string text = read_all(path);
  ASSERT_LT(keep, text.size());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text.substr(0, keep);
}

}  // namespace

TEST(CacheStore, AppendReplayRoundTripAndStats) {
  pc::Store store(temp_store_dir("cs_roundtrip"));
  ASSERT_TRUE(store.open());
  ASSERT_TRUE(store.append("s", kVersion, record(1)));
  ASSERT_TRUE(store.append_batch("s", kVersion, {record(2), record(3)}));

  pc::Store reader(store.dir());
  EXPECT_EQ(replay_ids(reader, "s"), (std::vector<int>{1, 2, 3}));

  const pc::StreamStats w = store.stats("s");
  EXPECT_EQ(w.records_appended, 3u);
  EXPECT_EQ(w.generation, 0u);
  EXPECT_GT(w.journal_bytes, 0u);
  const pc::StreamStats r = reader.stats("s");
  EXPECT_EQ(r.records_replayed, 3u);
  EXPECT_EQ(r.torn_records_dropped, 0u);
  EXPECT_EQ(r.crc_records_dropped, 0u);
}

TEST(CacheStore, EmptyBatchSeedsTheStream) {
  // A layer that computed nothing still stamps the index on flush, so
  // the next attach() finds a warm (empty) stream instead of a cold one.
  pc::Store store(temp_store_dir("cs_empty_batch"));
  ASSERT_TRUE(store.open());
  EXPECT_FALSE(store.replay("s", kVersion, [](const Json&) {}));
  ASSERT_TRUE(store.append_batch("s", kVersion, {}));
  EXPECT_TRUE(store.replay("s", kVersion, [](const Json&) { FAIL(); }));
}

TEST(CacheStore, TornTailRecordIsDroppedOnReplay) {
  pc::Store store(temp_store_dir("cs_torn"));
  ASSERT_TRUE(store.open());
  ASSERT_TRUE(store.append_batch("s", kVersion,
                                 {record(1), record(2), record(3)}));
  // Crash injection: the writer died mid-append of record 3 — cut the
  // journal 5 bytes into that record's frame.
  const std::string journal = store.dir() + "/s.journal";
  const std::size_t full = ps::file_size(journal);
  const std::size_t tail =
      pc::frame_record(record(3).dump()).size();
  truncate_file(journal, full - tail + 5);

  pc::Store reader(store.dir());
  EXPECT_EQ(replay_ids(reader, "s"), (std::vector<int>{1, 2}));
  EXPECT_EQ(reader.stats("s").torn_records_dropped, 1u);
  EXPECT_EQ(reader.stats("s").records_replayed, 2u);

  // The torn tail is gone for good after the next compaction: the folded
  // snapshot holds exactly the intact prefix.
  ASSERT_TRUE(reader.compact("s", kVersion));
  pc::Store again(store.dir());
  EXPECT_EQ(replay_ids(again, "s"), (std::vector<int>{1, 2}));
}

TEST(CacheStore, TornJournalRecoversToLastGoodGeneration) {
  pc::Store store(temp_store_dir("cs_torn_gen"));
  ASSERT_TRUE(store.open());
  ASSERT_TRUE(store.append_batch("s", kVersion, {record(1), record(2)}));
  ASSERT_TRUE(store.compact("s", kVersion));  // generation 1 snapshot
  ASSERT_TRUE(store.append_batch("s", kVersion, {record(3), record(4)}));

  // A writer died mid-append of record 4: the snapshot (generation 1)
  // plus the journal's intact prefix must survive.
  const std::string journal = store.dir() + "/s.journal";
  const std::size_t tail = pc::frame_record(record(4).dump()).size();
  truncate_file(journal, ps::file_size(journal) - tail + 3);

  pc::Store reader(store.dir());
  EXPECT_EQ(replay_ids(reader, "s"), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(reader.stats("s").generation, 1u);
  EXPECT_EQ(reader.stats("s").torn_records_dropped, 1u);
}

TEST(CacheStore, CrcMismatchSkipsOnlyTheGarbageRecord) {
  pc::Store store(temp_store_dir("cs_crc"));
  ASSERT_TRUE(store.open());
  ASSERT_TRUE(store.append("s", kVersion, record(1)));
  // Inject a complete, length-correct frame whose payload was bit-rotted
  // after framing: CRC rejects it, but the length field still delimits
  // it, so the record appended after it must survive.
  std::string garbage = pc::frame_record(record(99).dump());
  garbage[garbage.size() - 2] ^= 0x20;  // last payload byte, header intact
  ASSERT_TRUE(ps::append_file(store.dir() + "/s.journal", garbage));
  ASSERT_TRUE(store.append("s", kVersion, record(2)));

  pc::Store reader(store.dir());
  EXPECT_EQ(replay_ids(reader, "s"), (std::vector<int>{1, 2}));
  EXPECT_EQ(reader.stats("s").crc_records_dropped, 1u);
  EXPECT_EQ(reader.stats("s").torn_records_dropped, 0u);
}

TEST(CacheStore, CompactionIsByteStableAndBumpsGeneration) {
  pc::Store store(temp_store_dir("cs_compact"));
  ASSERT_TRUE(store.open());
  // Duplicate payloads (two workers scoring the same key emit identical
  // records) collapse to their first occurrence.
  ASSERT_TRUE(store.append_batch(
      "s", kVersion, {record(1), record(2), record(1), record(3)}));
  const std::vector<int> before = replay_ids(store, "s");
  EXPECT_EQ(before, (std::vector<int>{1, 2, 1, 3}));

  ASSERT_TRUE(store.compact("s", kVersion));
  EXPECT_EQ(store.stats("s").generation, 1u);
  EXPECT_EQ(store.journal_bytes("s"), 0u);  // journal reset
  EXPECT_EQ(replay_ids(store, "s"), (std::vector<int>{1, 2, 3}));
  const std::string snap1 = read_all(store.dir() + "/s.1.snap");
  EXPECT_FALSE(snap1.empty());

  // Replayed state is byte-stable across further compactions: the
  // deduplicated record sequence never changes again.
  ASSERT_TRUE(store.append("s", kVersion, record(4)));
  ASSERT_TRUE(store.compact("s", kVersion));
  EXPECT_EQ(store.stats("s").generation, 2u);
  EXPECT_FALSE(std::filesystem::exists(store.dir() + "/s.1.snap"))
      << "superseded snapshot must be cleaned up";
  const std::string snap2 = read_all(store.dir() + "/s.2.snap");
  EXPECT_EQ(snap2.substr(0, snap1.size()), snap1)
      << "compaction must preserve the folded prefix byte-for-byte";
  EXPECT_EQ(replay_ids(store, "s"), (std::vector<int>{1, 2, 3, 4}));
}

TEST(CacheStore, MaybeCompactHonorsThreshold) {
  pc::Store store(temp_store_dir("cs_threshold"));
  ASSERT_TRUE(store.open());
  store.set_compact_threshold(1);  // anything non-trivial compacts
  ASSERT_TRUE(store.append("s", kVersion, record(1)));
  ASSERT_TRUE(store.maybe_compact("s", kVersion));
  EXPECT_EQ(store.stats("s").generation, 1u);
  EXPECT_EQ(store.stats("s").compactions, 1u);
  EXPECT_GT(store.stats("s").journal_bytes_before_compact, 0u);
  EXPECT_EQ(store.stats("s").journal_bytes_after_compact, 0u);

  // Below the threshold nothing happens.
  store.set_compact_threshold(1 << 20);
  ASSERT_TRUE(store.append("s", kVersion, record(2)));
  ASSERT_TRUE(store.maybe_compact("s", kVersion));
  EXPECT_EQ(store.stats("s").generation, 1u);
}

TEST(CacheStore, VersionMismatchYieldsNothingAndAppendResets) {
  pc::Store store(temp_store_dir("cs_version"));
  ASSERT_TRUE(store.open());
  ASSERT_TRUE(store.append("s", kVersion, record(1)));

  // A replay under a different pipeline version is a cold start...
  pc::Store reader(store.dir());
  EXPECT_FALSE(reader.replay("s", kVersion + 1, [](const Json&) {
    FAIL() << "stale stream must yield nothing";
  }));

  // ...and an append under a different version resets the stream — the
  // journal analogue of save() overwriting a stale cache file.
  ASSERT_TRUE(store.append("s", kVersion + 1, record(7)));
  EXPECT_EQ(replay_ids(store, "s", kVersion + 1), (std::vector<int>{7}));
  EXPECT_FALSE(store.replay("s", kVersion, [](const Json&) {}));
}

TEST(CacheStore, ConcurrentThreadAppendersInterleaveWholeRecords) {
  const std::string dir = temp_store_dir("cs_threads");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    pc::Store seed(dir);
    ASSERT_TRUE(seed.open());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dir, t] {
      // One Store per thread: the flock serializes across open-file
      // descriptions, i.e. across threads holding their own fds just
      // like across processes.
      pc::Store store(dir);
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(
            store.append("s", kVersion, record(t * kPerThread + i)));
      }
    });
  }
  for (auto& t : threads) t.join();

  pc::Store reader(dir);
  const std::vector<int> ids = replay_ids(reader, "s");
  EXPECT_EQ(ids.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Every record survives intact (no torn interleavings), exactly once.
  EXPECT_EQ(std::set<int>(ids.begin(), ids.end()).size(), ids.size());
  EXPECT_EQ(reader.stats("s").torn_records_dropped, 0u);
  EXPECT_EQ(reader.stats("s").crc_records_dropped, 0u);
}

TEST(CacheStore, ConcurrentProcessAppendersShareOneStore) {
  const std::string dir = temp_store_dir("cs_procs");
  constexpr int kProcs = 4;
  constexpr int kPerProc = 40;
  {
    pc::Store seed(dir);
    ASSERT_TRUE(seed.open());
  }
  std::vector<pid_t> children;
  for (int p = 0; p < kProcs; ++p) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: append this process's records (with periodic compactions
      // racing the other writers) and exit without running gtest's
      // teardown.
      pc::Store store(dir);
      store.set_compact_threshold(1024);
      bool ok = true;
      for (int i = 0; i < kPerProc; ++i) {
        ok = ok && store.append("s", kVersion, record(p * kPerProc + i));
        if (i % 16 == 15) ok = ok && store.maybe_compact("s", kVersion);
      }
      _exit(ok ? 0 : 1);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  pc::Store reader(dir);
  const std::vector<int> ids = replay_ids(reader, "s");
  // Compaction under the stream lock can never lose a concurrent
  // appender's records; a crash window can at worst duplicate one, and
  // none of these writers crashed.
  EXPECT_EQ(std::set<int>(ids.begin(), ids.end()).size(),
            static_cast<std::size_t>(kProcs * kPerProc));
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kProcs * kPerProc));
  EXPECT_EQ(reader.stats("s").torn_records_dropped, 0u);
}

TEST(CacheStore, VersionedFileHelpersRoundTripAndReject) {
  const std::string path =
      std::string(::testing::TempDir()) + "cs_versioned.json";
  Json entries = Json::array();
  entries.push_back(record(1));
  ASSERT_TRUE(pc::write_versioned_file(path, "test-format-v1", kVersion,
                                       {{"entries", std::move(entries)}}));
  const auto ok = pc::read_versioned_file(path, "test-format-v1", kVersion);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ((*ok)["entries"].items().size(), 1u);
  EXPECT_FALSE(
      pc::read_versioned_file(path, "test-format-v2", kVersion));
  EXPECT_FALSE(
      pc::read_versioned_file(path, "test-format-v1", kVersion + 1));
  std::remove(path.c_str());
}
