// sweep_merge: fan-in for sweep_worker shards. Recombines the per-sample
// records of K shard files into per-cell TaskResults (bit-identical to a
// single-process sweep), writes the merged sweep as JSON figure input, and
// optionally re-runs the sweep in-process to enforce the determinism
// guarantee (--verify, used by the CI fan-in job).
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/report.hpp"
#include "eval/shard.hpp"

using namespace pareval;
using support::Json;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out merged.json] [--report] [--verify] "
               "shard1.json [shard2.json ...]\n"
               "  --out FILE   write the merged sweep (default: merged.json)\n"
               "  --report     print the figure reports off the merged sweep\n"
               "  --verify     re-run the sweep in-process and fail unless\n"
               "               the merged result is bit-identical\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "merged.json";
  bool report = false;
  bool verify = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  // Group every file's ShardResults by pair, in all_pairs() order.
  std::map<std::size_t, std::vector<eval::ShardResult>> by_pair;
  auto pair_index = [](const llm::Pair& p) -> std::size_t {
    const auto& pairs = llm::all_pairs();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (pairs[i] == p) return i;
    }
    return pairs.size();  // unknown pair: still merged, ordered last
  };
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "sweep_merge: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<eval::ShardResult> shards;
    std::string error;
    if (!eval::parse_shard_file(buf.str(), &shards, &error)) {
      std::fprintf(stderr, "sweep_merge: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    for (auto& shard : shards) {
      by_pair[pair_index(shard.pair)].push_back(std::move(shard));
    }
  }

  Json merged = Json::object();
  merged.set("format", "pareval-sweep");
  Json pairs_json = Json::array();
  std::vector<eval::TaskResult> all;
  int mismatches = 0;
  for (auto& [index, shards] : by_pair) {
    const llm::Pair pair = shards.front().pair;
    std::vector<eval::TaskResult> tasks;
    try {
      tasks = eval::merge_shards(pair, shards);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep_merge: %s: %s\n",
                   llm::pair_name(pair).c_str(), e.what());
      return 1;
    }
    std::printf("%s: merged %zu shards -> %zu cells\n",
                llm::pair_name(pair).c_str(), shards.size(), tasks.size());

    if (verify) {
      eval::HarnessConfig config;
      config.samples_per_task = shards.front().samples_per_task;
      config.seed = shards.front().seed;
      const auto reference = eval::run_pair_sweep(pair, config);
      const bool identical = reference == tasks;
      std::printf("  determinism (merged vs single-process): %s\n",
                  identical ? "IDENTICAL" : "MISMATCH");
      if (!identical) ++mismatches;
    }

    Json entry = Json::object();
    Json pair_json = Json::object();
    pair_json.set("from", eval::model_key(pair.from));
    pair_json.set("to", eval::model_key(pair.to));
    entry.set("pair", std::move(pair_json));
    entry.set("samples_per_task", shards.front().samples_per_task);
    entry.set("shard_count", shards.front().shard_count);
    Json tasks_json = Json::array();
    for (const auto& t : tasks) tasks_json.push_back(eval::to_json(t));
    entry.set("tasks", std::move(tasks_json));
    pairs_json.push_back(std::move(entry));

    if (report) {
      std::printf("%s", eval::figure2_report(pair, tasks).c_str());
      for (auto& t : tasks) all.push_back(std::move(t));
    }
  }
  merged.set("pairs", std::move(pairs_json));

  if (report) {
    // Cross-pair figures off the union of all merged tasks.
    std::printf("%s", eval::figure4_report(all).c_str());
    std::printf("%s", eval::figure5_report(all).c_str());
    std::printf("%s", eval::table2_report(all).c_str());
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "sweep_merge: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << merged.dump() << '\n';
  if (!out.good()) {
    std::fprintf(stderr, "sweep_merge: write to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "sweep_merge: %d pair(s) diverged from the single-process "
                 "reference\n",
                 mismatches);
    return 1;
  }
  return 0;
}
