// sweep_merge: fan-in for sweep_worker shards. Recombines the per-sample
// records of K shard files into per-cell TaskResults (bit-identical to a
// single-process sweep), writes the merged sweep as JSON figure input, and
// optionally re-runs the sweep in-process to enforce the determinism
// guarantee (--verify, used by the CI fan-in job).
//
// Every shard embeds the SweepSpec it ran plus its spec_hash; all inputs
// must agree on that hash (and on --spec FILE when given) or the merge is
// refused — shards of different sweeps can never be silently recombined.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/report.hpp"
#include "eval/shard.hpp"
#include "support/strings.hpp"

using namespace pareval;
using support::Json;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--spec spec.json] [--out merged.json] [--report] "
      "[--verify] shard1.json [shard2.json ...]\n"
      "  --spec FILE         require every shard to match this spec (hash "
      "check)\n"
      "  --out FILE          write the merged sweep (default: merged.json)\n"
      "  --report            print the figure reports off the merged sweep\n"
      "  --verify            re-run the sweep in-process — once uncached\n"
      "                      and once through a fresh staged two-layer\n"
      "                      cache — and fail unless all three results\n"
      "                      are bit-identical\n"
      "  --merge-cache FILE  fold every --delta into FILE (loading FILE's\n"
      "                      previous contents first) to publish a warm\n"
      "                      cache for the next run; skipped when --verify\n"
      "                      fails (pair it with --verify to publish only\n"
      "                      proven scores)\n"
      "  --delta FILE        a sweep_worker --cache-delta file (repeat\n"
      "                      per worker)\n"
      "All shards must come from ONE spec; to cover several pairs in one\n"
      "merge, select them in one spec (or --pair all) instead of merging\n"
      "separate per-pair sweeps.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "merged.json";
  std::string spec_path;
  std::string merge_cache_path;
  std::vector<std::string> delta_paths;
  bool report = false;
  bool verify = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--merge-cache" && i + 1 < argc) {
      merge_cache_path = argv[++i];
    } else if (arg == "--delta" && i + 1 < argc) {
      delta_paths.push_back(argv[++i]);
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);
  if (!delta_paths.empty() && merge_cache_path.empty()) {
    std::fprintf(stderr,
                 "sweep_merge: --delta requires --merge-cache FILE\n");
    return 2;
  }

  std::vector<eval::ShardResult> shards;
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "sweep_merge: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<eval::ShardResult> parsed;
    std::string error;
    if (!eval::parse_shard_file(buf.str(), &parsed, &error)) {
      std::fprintf(stderr, "sweep_merge: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    for (auto& shard : parsed) shards.push_back(std::move(shard));
  }

  // The authoritative spec: --spec FILE when given, else the first
  // shard's embedded copy. merge_shards rejects any shard whose hash
  // disagrees with it.
  const eval::Suite& suite = eval::Suite::paper();
  eval::SweepSpec spec;
  if (!spec_path.empty()) {
    std::string error;
    if (!eval::load_and_validate_spec(spec_path, suite, &spec, &error)) {
      std::fprintf(stderr, "sweep_merge: %s\n", error.c_str());
      return 1;
    }
  } else {
    spec = shards.front().spec;
    const std::string invalid = spec.validate(suite);
    if (!invalid.empty()) {
      std::fprintf(stderr, "sweep_merge: invalid spec: %s\n",
                   invalid.c_str());
      return 1;
    }
  }

  std::vector<eval::TaskResult> tasks;
  try {
    tasks = eval::merge_shards(suite, spec, shards);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_merge: %s\n", e.what());
    return 1;
  }
  std::printf("spec %s: merged %zu shards -> %zu cells\n",
              support::u64_to_hex(eval::spec_hash(spec)).c_str(),
              shards.size(), tasks.size());

  int mismatches = 0;
  if (verify) {
    // Two in-process references: one with caching off entirely, one
    // through a fresh staged two-layer cache. Shards, the uncached run,
    // and the cached run must all be bit-identical — this is the CI gate
    // that proves both distribution AND the cache layers are pure
    // memoization.
    eval::HarnessConfig uncached;
    uncached.use_score_cache = false;
    const auto reference = eval::run_sweep(suite, spec, uncached);
    const bool identical = reference == tasks;
    std::printf("determinism (merged vs uncached single-process): %s\n",
                identical ? "IDENTICAL" : "MISMATCH");
    if (!identical) ++mismatches;

    eval::ScoreCache cache;
    eval::HarnessConfig cached;
    cached.score_cache = &cache;
    const auto cached_reference = eval::run_sweep(suite, spec, cached);
    const bool cache_identical = cached_reference == reference;
    std::printf(
        "determinism (staged-cached vs uncached): %s (score layer %zu "
        "hits / %zu misses, build layer %zu hits / %zu misses)\n",
        cache_identical ? "IDENTICAL" : "MISMATCH", cache.hits(),
        cache.misses(), cache.builds().hits(), cache.builds().misses());
    if (!cache_identical) ++mismatches;
  }

  // Group the merged cells by pair (suite order) for the per-pair figure
  // reports and the merged-sweep JSON layout.
  Json merged = Json::object();
  merged.set("format", "pareval-sweep");
  merged.set("spec", eval::to_json(spec));
  merged.set("spec_hash",
             support::u64_to_hex(eval::spec_hash(spec)));
  merged.set("shard_count",
             shards.empty() ? 0 : shards.front().shard_count);
  Json pairs_json = Json::array();
  for (const llm::Pair& pair : suite.pairs()) {
    if (!spec.selects_pair(pair)) continue;
    std::vector<eval::TaskResult> pair_tasks;
    for (const auto& t : tasks) {
      if (t.pair == pair) pair_tasks.push_back(t);
    }
    if (pair_tasks.empty()) continue;
    Json entry = Json::object();
    Json pair_json = Json::object();
    pair_json.set("from", eval::model_key(pair.from));
    pair_json.set("to", eval::model_key(pair.to));
    entry.set("pair", std::move(pair_json));
    Json tasks_json = Json::array();
    for (const auto& t : pair_tasks) tasks_json.push_back(eval::to_json(t));
    entry.set("tasks", std::move(tasks_json));
    pairs_json.push_back(std::move(entry));
  }
  merged.set("pairs", std::move(pairs_json));

  if (report) {
    std::printf("%s\n",
                eval::stage_breakdown_report(suite, spec, tasks).c_str());
    std::printf("%s", eval::figure2_reports(suite, spec, tasks).c_str());
    // Cross-pair figures off the union of all merged tasks.
    std::printf("%s", eval::figure4_report(suite, spec, tasks).c_str());
    std::printf("%s", eval::figure5_report(suite, spec, tasks).c_str());
    std::printf("%s", eval::table2_report(suite, tasks).c_str());
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "sweep_merge: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << merged.dump() << '\n';
  if (!out.good()) {
    std::fprintf(stderr, "sweep_merge: write to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Fold the workers' cache deltas into a published cache so the next
  // sweep warm-starts from this run's scores. Existing published entries
  // survive (load-then-merge); a stale or missing published file just
  // means the deltas seed a fresh one. Never publish from a run that
  // failed verification — a divergent sweep's scores must not warm-start
  // anything.
  if (!merge_cache_path.empty() && mismatches > 0) {
    std::fprintf(stderr,
                 "sweep_merge: verification failed — not publishing %s\n",
                 merge_cache_path.c_str());
  }
  if (!merge_cache_path.empty() && mismatches == 0) {
    eval::ScoreCache published;
    const bool had_previous = published.load(merge_cache_path);
    std::size_t loaded = 0;
    for (const std::string& delta : delta_paths) {
      if (published.load(delta)) {
        ++loaded;
      } else {
        std::fprintf(stderr,
                     "sweep_merge: skipping stale/unreadable cache delta "
                     "%s\n",
                     delta.c_str());
      }
    }
    if (!published.save(merge_cache_path)) {
      std::fprintf(stderr, "sweep_merge: could not write merged cache %s\n",
                   merge_cache_path.c_str());
      return 1;
    }
    std::printf(
        "merged %zu/%zu cache deltas into %s (%zu entries%s)\n", loaded,
        delta_paths.size(), merge_cache_path.c_str(), published.size(),
        had_previous ? ", on top of the previous published cache" : "");
  }

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "sweep_merge: merged sweep diverged from the "
                 "single-process reference\n");
    return 1;
  }
  return 0;
}
