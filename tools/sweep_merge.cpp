// sweep_merge: fan-in for sweep_worker shards. Recombines the per-sample
// records of K shard files into per-cell TaskResults (bit-identical to a
// single-process sweep), writes the merged sweep as JSON figure input, and
// optionally re-runs the sweep in-process to enforce the determinism
// guarantee (--verify, used by the CI fan-in job).
//
// Every shard embeds the SweepSpec it ran plus its spec_hash; all inputs
// must agree on that hash (and on --spec FILE when given) or the merge is
// refused — shards of different sweeps can never be silently recombined.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "buildsim/linkcache.hpp"
#include "buildsim/tucache.hpp"
#include "common.hpp"
#include "execsim/driver.hpp"
#include "eval/report.hpp"
#include "eval/shard.hpp"
#include "minic/engine.hpp"
#include "minic/objcodec.hpp"
#include "support/cachestore.hpp"
#include "support/strings.hpp"

using namespace pareval;
using support::Json;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--spec spec.json] [--out merged.json] [--report] "
      "[--verify] shard1.json [shard2.json ...]\n"
      "  --spec FILE         require every shard to match this spec (hash "
      "check)\n"
      "  --engine E          require every shard to have run under this\n"
      "                      Execute-stage engine ('interp' or 'vm');\n"
      "                      without it any uniform engine is accepted\n"
      "  --out FILE          write the merged sweep (default: merged.json)\n"
      "  --report            print the figure reports off the merged sweep\n"
      "  --verify            re-run the sweep in-process eight ways —\n"
      "                      uncached, staged-cached (TU layer off),\n"
      "                      TU-cached, score-cold/TU-warm-file (Build\n"
      "                      stages reconstruct from the persisted TU\n"
      "                      cache), warm-file-start (score + TU caches\n"
      "                      reloaded from disk, Build stage skipped),\n"
      "                      journal-warm (both layers flushed to a\n"
      "                      cache::Store, compacted, and replayed into a\n"
      "                      fresh cache, Build stage skipped),\n"
      "                      object-warm (only the TU-object + link\n"
      "                      streams replayed — every sample re-scores\n"
      "                      but zero sources are parsed and zero\n"
      "                      programs linked), and uncached under the\n"
      "                      bytecode-VM engine — and fail unless shards\n"
      "                      and every reference run are bit-identical.\n"
      "                      With --cache-dir, a ninth store-warm\n"
      "                      reference replays the shared directory the\n"
      "                      workers wrote\n"
      "  --cache-dir DIR     the shared journaled cache directory\n"
      "                      (cache::Store) this merge verifies against\n"
      "                      and publishes to; skipped when --verify fails\n"
      "  --import-cache-dir DIR  fold another store's streams (e.g. a\n"
      "                      per-worker journal dir) into --cache-dir\n"
      "                      (repeat per worker)\n"
      "  --merge-cache FILE  [deprecated: use --cache-dir]\n"
      "                      fold every --delta into FILE (loading FILE's\n"
      "                      previous contents first) to publish a warm\n"
      "                      cache for the next run; skipped when --verify\n"
      "                      fails (pair it with --verify to publish only\n"
      "                      proven scores)\n"
      "  --delta FILE        a sweep_worker --cache-delta file (repeat\n"
      "                      per worker)\n"
      "  --merge-tu-cache FILE  [deprecated: use --cache-dir]\n"
      "                      fold every --tu-delta into FILE (the\n"
      "                      published pareval-tu-cache-v1 file)\n"
      "  --tu-delta FILE     a sweep_worker --tu-cache-delta file (repeat\n"
      "                      per worker)\n"
      "All shards must come from ONE spec; to cover several pairs in one\n"
      "merge, select them in one spec (or --pair all) instead of merging\n"
      "separate per-pair sweeps.\n",
      argv0);
  return 2;
}

void warn_deprecated(const char* flag) {
  tools::warn_deprecated("sweep_merge", flag);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "merged.json";
  std::string spec_path;
  std::string engine_arg;
  std::string cache_dir;
  std::vector<std::string> import_dirs;
  std::string merge_cache_path;
  std::vector<std::string> delta_paths;
  std::string merge_tu_cache_path;
  std::vector<std::string> tu_delta_paths;
  bool report = false;
  bool verify = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_arg = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--import-cache-dir" && i + 1 < argc) {
      import_dirs.push_back(argv[++i]);
    } else if (arg == "--merge-cache" && i + 1 < argc) {
      warn_deprecated("--merge-cache");
      merge_cache_path = argv[++i];
    } else if (arg == "--delta" && i + 1 < argc) {
      delta_paths.push_back(argv[++i]);
    } else if (arg == "--merge-tu-cache" && i + 1 < argc) {
      warn_deprecated("--merge-tu-cache");
      merge_tu_cache_path = argv[++i];
    } else if (arg == "--tu-delta" && i + 1 < argc) {
      tu_delta_paths.push_back(argv[++i]);
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);
  if (!delta_paths.empty() && merge_cache_path.empty()) {
    std::fprintf(stderr,
                 "sweep_merge: --delta requires --merge-cache FILE\n");
    return 2;
  }
  if (!tu_delta_paths.empty() && merge_tu_cache_path.empty()) {
    std::fprintf(stderr,
                 "sweep_merge: --tu-delta requires --merge-tu-cache FILE\n");
    return 2;
  }
  if (!import_dirs.empty() && cache_dir.empty()) {
    std::fprintf(stderr,
                 "sweep_merge: --import-cache-dir requires --cache-dir "
                 "DIR\n");
    return 2;
  }

  std::vector<eval::ShardResult> shards;
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "sweep_merge: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<eval::ShardResult> parsed;
    std::string error;
    if (!eval::parse_shard_file(buf.str(), &parsed, &error)) {
      std::fprintf(stderr, "sweep_merge: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    for (auto& shard : parsed) shards.push_back(std::move(shard));
  }

  // --engine pins the fleet's engine explicitly; merge_shards separately
  // rejects any *mixed* set even without the flag.
  if (!engine_arg.empty()) {
    minic::EngineKind required_kind = minic::EngineKind::Interp;
    if (!tools::parse_engine_flag("sweep_merge", engine_arg.c_str(),
                                  &required_kind)) {
      return 2;
    }
    const std::optional<minic::EngineKind> required = required_kind;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (shards[i].engine != *required) {
        std::fprintf(stderr,
                     "sweep_merge: shard %d ran under engine '%s' but "
                     "--engine %s was required\n",
                     shards[i].shard_index,
                     minic::engine_key(shards[i].engine),
                     minic::engine_key(*required));
        return 1;
      }
    }
  }

  // The authoritative spec: --spec FILE when given, else the first
  // shard's embedded copy. merge_shards rejects any shard whose hash
  // disagrees with it.
  const eval::Suite& suite = eval::Suite::paper();
  eval::SweepSpec spec;
  if (!spec_path.empty()) {
    if (!tools::load_spec_flag("sweep_merge", spec_path, suite, &spec)) {
      return 1;
    }
  } else {
    spec = shards.front().spec;
    const std::string invalid = spec.validate(suite);
    if (!invalid.empty()) {
      std::fprintf(stderr, "sweep_merge: invalid spec: %s\n",
                   invalid.c_str());
      return 1;
    }
  }

  std::vector<eval::TaskResult> tasks;
  try {
    tasks = eval::merge_shards(suite, spec, shards);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_merge: %s\n", e.what());
    return 1;
  }
  std::printf("spec %s: merged %zu shards -> %zu cells\n",
              support::u64_to_hex(eval::spec_hash(spec)).c_str(),
              shards.size(), tasks.size());

  int mismatches = 0;
  if (verify) {
    // Eight in-process references: uncached, staged two-layer cache (TU
    // layer off), TU-cached (all three layers), score-cold/TU-warm-file
    // (persisted plans/TUs reconstruct during real Build stages), a
    // warm *file* start (score + TU caches reloaded; Build skipped), a
    // journal-warm start (both layers flushed to a cache::Store,
    // compacted, and replayed into a fresh cache; Build skipped), an
    // object-warm start (only the TU-object + link streams replayed —
    // every sample re-scores, but the warm-object store must satisfy
    // every Build with zero parses and zero links), and an uncached run
    // under the bytecode-VM engine. Shards and all eight runs must be
    // bit-identical — the CI gate that proves distribution, every cache
    // layer (live, persisted, journaled, or serialized objects), and
    // the alternate execution engine are all pure memoization / pure
    // reimplementation.
    eval::HarnessConfig uncached;
    uncached.use_score_cache = false;
    const auto reference = eval::run_sweep(suite, spec, uncached);
    const bool identical = reference == tasks;
    std::printf("determinism (merged vs uncached single-process): %s\n",
                identical ? "IDENTICAL" : "MISMATCH");
    if (!identical) ++mismatches;

    eval::ScoreCache staged;
    staged.enable_tu_layer(false);
    eval::HarnessConfig cached;
    cached.score_cache = &staged;
    const auto staged_reference = eval::run_sweep(suite, spec, cached);
    const bool staged_identical = staged_reference == reference;
    std::printf(
        "determinism (staged-cached vs uncached): %s (score layer %zu "
        "hits / %zu misses, build layer %zu hits / %zu misses)\n",
        staged_identical ? "IDENTICAL" : "MISMATCH", staged.hits(),
        staged.misses(), staged.builds().hits(), staged.builds().misses());
    if (!staged_identical) ++mismatches;

    eval::ScoreCache tu_cached;
    cached.score_cache = &tu_cached;
    const auto tu_reference = eval::run_sweep(suite, spec, cached);
    const bool tu_identical = tu_reference == reference;
    std::printf(
        "determinism (TU-cached vs uncached): %s (TU layer %zu hits / "
        "%zu misses, %zu plan hits, dedupe %zu/%zu)\n",
        tu_identical ? "IDENTICAL" : "MISMATCH", tu_cached.tus().hits(),
        tu_cached.tus().misses(), tu_cached.tus().plan_hits(),
        tu_cached.tus().lookups() - tu_cached.tus().misses(),
        tu_cached.tus().lookups());
    if (!tu_identical) ++mismatches;

    // Warm file start: persist the TU-cached run's score + TU layers,
    // reload them into a fresh cache, and re-run. Every score must come
    // from the reloaded file — the Build stage (and with it every TU
    // compile) is skipped entirely.
    const std::string verify_score = out_path + ".verify-score-cache.json";
    const std::string verify_tu = out_path + ".verify-tu-cache.json";
    const std::uint64_t pipeline_version =
        eval::scoring_pipeline_hash(suite);
    if (!tu_cached.save(verify_score, pipeline_version) ||
        !tu_cached.tus().save(verify_tu, pipeline_version)) {
      std::fprintf(stderr,
                   "sweep_merge: could not persist verify caches\n");
      ++mismatches;
    } else {
      // First, a score-cold/TU-warm reference: only the TU file is
      // reloaded, so Build stages actually run against the persisted
      // entries — failed plans and failed TUs must reconstruct
      // bit-identically from disk (the warm-file-start run below skips
      // Build entirely, so it alone would never exercise this path).
      eval::ScoreCache tu_warm;
      if (!tu_warm.tus().load(verify_tu, pipeline_version)) {
        std::fprintf(stderr,
                     "sweep_merge: could not reload TU verify cache\n");
        ++mismatches;
      } else {
        cached.score_cache = &tu_warm;
        const auto tu_warm_reference = eval::run_sweep(suite, spec, cached);
        const bool tu_warm_identical = tu_warm_reference == reference;
        std::printf(
            "determinism (score-cold/TU-warm-file vs uncached): %s (%zu "
            "plan hits, %zu persisted TU hits, %zu TU compiles)\n",
            tu_warm_identical ? "IDENTICAL" : "MISMATCH",
            tu_warm.tus().plan_hits(), tu_warm.tus().persisted_hits(),
            tu_warm.tus().misses());
        if (!tu_warm_identical) ++mismatches;
      }

      eval::ScoreCache warm;
      if (!warm.load(verify_score, pipeline_version) ||
          !warm.tus().load(verify_tu, pipeline_version)) {
        std::fprintf(stderr,
                     "sweep_merge: could not reload verify caches\n");
        ++mismatches;
      } else {
        cached.score_cache = &warm;
        const auto warm_reference = eval::run_sweep(suite, spec, cached);
        const bool warm_identical = warm_reference == reference;
        // A warm file start must never rebuild: zero build-layer misses
        // means the Build stage was skipped for every sample.
        const bool build_skipped =
            warm.builds().misses() == 0 && warm.tus().misses() == 0;
        std::printf(
            "determinism (warm-file-start vs uncached): %s (score layer "
            "%zu hits / %zu misses; Build stage %s: %zu builds, %zu TU "
            "compiles)\n",
            warm_identical ? "IDENTICAL" : "MISMATCH", warm.hits(),
            warm.misses(), build_skipped ? "SKIPPED" : "NOT SKIPPED",
            warm.builds().misses(), warm.tus().misses());
        if (!warm_identical || !build_skipped) ++mismatches;
      }
    }
    std::remove(verify_score.c_str());
    std::remove(verify_tu.c_str());

    // Journal-warm reference: flush the TU-cached run's score + TU layers
    // into a throwaway cache::Store, compact every stream (so the replay
    // crosses a generation bump), and replay the store into a fresh cache
    // through a separate Store instance — the multi-writer analogue of
    // the warm-file-start reference. Must be bit-identical with the Build
    // stage skipped, proving journaled persistence round-trips exactly
    // like the legacy files.
    {
      const std::string store_dir = out_path + ".verify-store";
      std::error_code ec;
      std::filesystem::remove_all(store_dir, ec);
      cache::Store writer(store_dir);
      bool store_built = writer.open();
      if (store_built) {
        tu_cached.attach(writer, pipeline_version);
        tu_cached.tus().attach(writer, pipeline_version);
        tu_cached.links().attach(writer, pipeline_version);
        tu_cached.flush();
        tu_cached.tus().flush();
        tu_cached.links().flush();
        store_built =
            writer.compact(eval::ScoreCache::kStream, pipeline_version) &&
            writer.compact(buildsim::TuCompileCache::kTuStream,
                           pipeline_version) &&
            writer.compact(buildsim::TuCompileCache::kPlanStream,
                           pipeline_version) &&
            // The object streams version-fold the codec format version,
            // so a codec bump cold-starts them without touching the
            // legacy streams.
            writer.compact(buildsim::TuCompileCache::kObjStream,
                           minic::obj_stream_version(pipeline_version)) &&
            writer.compact(buildsim::LinkCache::kStream,
                           minic::obj_stream_version(pipeline_version));
      }
      if (!store_built) {
        std::fprintf(stderr,
                     "sweep_merge: could not build the journal-warm "
                     "verify store\n");
        ++mismatches;
      } else {
        cache::Store reader(store_dir);
        eval::ScoreCache journal_warm;
        if (!journal_warm.attach(reader, pipeline_version) ||
            !journal_warm.tus().attach(reader, pipeline_version)) {
          std::fprintf(stderr,
                       "sweep_merge: could not replay the journal-warm "
                       "verify store\n");
          ++mismatches;
        } else {
          cached.score_cache = &journal_warm;
          const auto journal_reference =
              eval::run_sweep(suite, spec, cached);
          const bool journal_identical = journal_reference == reference;
          const bool build_skipped =
              journal_warm.builds().misses() == 0 &&
              journal_warm.tus().misses() == 0;
          std::printf(
              "determinism (journal-warm-store vs uncached): %s (score "
              "layer %zu hits / %zu misses; Build stage %s: %zu builds, "
              "%zu TU compiles; score stream gen %llu)\n",
              journal_identical ? "IDENTICAL" : "MISMATCH",
              journal_warm.hits(), journal_warm.misses(),
              build_skipped ? "SKIPPED" : "NOT SKIPPED",
              journal_warm.builds().misses(), journal_warm.tus().misses(),
              static_cast<unsigned long long>(
                  reader.stats(eval::ScoreCache::kStream).generation));
          if (!journal_identical || !build_skipped) ++mismatches;
        }

        // Object-warm reference: replay ONLY the build-side streams —
        // TU objects (+ plans) and the link cache; the score stream is
        // deliberately withheld. Every sample re-scores through a real
        // Build stage, but the warm-object store must satisfy all of it:
        // zero fresh TU compiles, zero source parses, zero link_tus
        // calls (measured by the process-wide driver counters).
        cache::Store obj_reader(store_dir);
        eval::ScoreCache object_warm;
        if (!object_warm.tus().attach(obj_reader, pipeline_version) ||
            !object_warm.links().attach(obj_reader, pipeline_version)) {
          std::fprintf(stderr,
                       "sweep_merge: could not replay the object-warm "
                       "verify store\n");
          ++mismatches;
        } else {
          const execsim::DriverCounters before = execsim::driver_counters();
          cached.score_cache = &object_warm;
          const auto object_reference = eval::run_sweep(suite, spec, cached);
          const execsim::DriverCounters after = execsim::driver_counters();
          const bool object_identical = object_reference == reference;
          const std::uint64_t parses = after.parses - before.parses;
          const std::uint64_t links = after.links - before.links;
          const bool build_warm = object_warm.tus().misses() == 0 &&
                                  parses == 0 && links == 0;
          std::printf(
              "determinism (object-warm-store vs uncached): %s (Build "
              "stage %s: %zu TU compiles, %llu parses, %llu links; %zu "
              "object hits, %zu link-cache hits)\n",
              object_identical ? "IDENTICAL" : "MISMATCH",
              build_warm ? "OBJECT-WARM" : "NOT OBJECT-WARM",
              object_warm.tus().misses(),
              static_cast<unsigned long long>(parses),
              static_cast<unsigned long long>(links),
              object_warm.tus().obj_hits(),
              object_warm.links().hits() +
                  object_warm.links().persisted_hits());
          if (!object_identical || !build_warm) ++mismatches;
        }
      }
      std::filesystem::remove_all(store_dir, ec);
    }

    // Store-warm reference: when this merge verifies a shared cache
    // directory the workers published into, replay it into a fresh cache
    // and re-run — the end-to-end proof that N concurrent writers plus a
    // journal-warm start stay bit-identical to the single-process
    // uncached sweep.
    if (!cache_dir.empty()) {
      cache::Store shared(cache_dir);
      eval::ScoreCache store_warm;
      const bool warm_scores = store_warm.attach(shared, pipeline_version);
      const bool warm_tus =
          store_warm.tus().attach(shared, pipeline_version);
      cached.score_cache = &store_warm;
      const auto store_reference = eval::run_sweep(suite, spec, cached);
      const bool store_identical = store_reference == reference;
      std::printf(
          "determinism (store-warm %s vs uncached): %s (score stream %s "
          "with %zu entries, TU streams %s; score layer %zu hits / %zu "
          "misses)\n",
          cache_dir.c_str(), store_identical ? "IDENTICAL" : "MISMATCH",
          warm_scores ? "warm" : "cold", store_warm.size(),
          warm_tus ? "warm" : "cold", store_warm.hits(),
          store_warm.misses());
      if (!store_identical) ++mismatches;
    }

    // Engine cross-check: the same sweep, uncached, but with every
    // Execute stage run by the bytecode VM instead of the tree-walking
    // interpreter. The two engines are required to be bit-identical on
    // scores, diags, and run stats, so any divergence is a VM (or
    // interpreter) bug, not noise.
    eval::HarnessConfig vm_uncached;
    vm_uncached.use_score_cache = false;
    vm_uncached.engine = minic::EngineKind::Vm;
    const auto vm_reference = eval::run_sweep(suite, spec, vm_uncached);
    const bool vm_identical = vm_reference == reference;
    std::printf("determinism (vm engine vs interpreter, both uncached): "
                "%s\n",
                vm_identical ? "IDENTICAL" : "MISMATCH");
    if (!vm_identical) ++mismatches;
  }

  // The shared merged-sweep builder — the same document the sweep
  // client folds a server job into, which is what makes the two paths
  // byte-comparable with cmp.
  const Json merged = eval::merged_sweep_json(
      suite, spec, shards.empty() ? 0 : shards.front().shard_count, tasks);

  if (report) {
    std::printf("%s\n",
                eval::stage_breakdown_report(suite, spec, tasks).c_str());
    std::printf("%s", eval::figure2_reports(suite, spec, tasks).c_str());
    // Cross-pair figures off the union of all merged tasks.
    std::printf("%s", eval::figure4_report(suite, spec, tasks).c_str());
    std::printf("%s", eval::figure5_report(suite, spec, tasks).c_str());
    std::printf("%s", eval::table2_report(suite, tasks).c_str());
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "sweep_merge: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << merged.dump() << '\n';
  if (!out.good()) {
    std::fprintf(stderr, "sweep_merge: write to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Fold the workers' cache deltas into a published cache so the next
  // sweep warm-starts from this run's scores. Existing published entries
  // survive (load-then-merge); a stale or missing published file just
  // means the deltas seed a fresh one. Never publish from a run that
  // failed verification — a divergent sweep's scores must not warm-start
  // anything.
  if (!merge_cache_path.empty() && mismatches > 0) {
    std::fprintf(stderr,
                 "sweep_merge: verification failed — not publishing %s\n",
                 merge_cache_path.c_str());
  }
  if (!merge_cache_path.empty() && mismatches == 0) {
    eval::ScoreCache published;
    const bool had_previous = published.load(merge_cache_path);
    std::size_t loaded = 0;
    for (const std::string& delta : delta_paths) {
      if (published.load(delta)) {
        ++loaded;
      } else {
        std::fprintf(stderr,
                     "sweep_merge: skipping stale/unreadable cache delta "
                     "%s\n",
                     delta.c_str());
      }
    }
    if (!published.save(merge_cache_path)) {
      std::fprintf(stderr, "sweep_merge: could not write merged cache %s\n",
                   merge_cache_path.c_str());
      return 1;
    }
    std::printf(
        "merged %zu/%zu cache deltas into %s (%zu entries%s)\n", loaded,
        delta_paths.size(), merge_cache_path.c_str(), published.size(),
        had_previous ? ", on top of the previous published cache" : "");
  }
  if (!merge_tu_cache_path.empty() && mismatches > 0) {
    std::fprintf(stderr,
                 "sweep_merge: verification failed — not publishing %s\n",
                 merge_tu_cache_path.c_str());
  }
  if (!merge_tu_cache_path.empty() && mismatches == 0) {
    const std::uint64_t pipeline_version = eval::scoring_pipeline_hash();
    buildsim::TuCompileCache published_tus;
    const bool had_previous =
        published_tus.load(merge_tu_cache_path, pipeline_version);
    std::size_t loaded = 0;
    for (const std::string& delta : tu_delta_paths) {
      if (published_tus.load(delta, pipeline_version)) {
        ++loaded;
      } else {
        std::fprintf(stderr,
                     "sweep_merge: skipping stale/unreadable TU-cache "
                     "delta %s\n",
                     delta.c_str());
      }
    }
    if (!published_tus.save(merge_tu_cache_path, pipeline_version)) {
      std::fprintf(stderr,
                   "sweep_merge: could not write merged TU cache %s\n",
                   merge_tu_cache_path.c_str());
      return 1;
    }
    std::printf(
        "merged %zu/%zu TU-cache deltas into %s (%zu TUs, %zu plans%s)\n",
        loaded, tu_delta_paths.size(), merge_tu_cache_path.c_str(),
        published_tus.size(), published_tus.plan_count(),
        had_previous ? ", on top of the previous published cache" : "");
  }

  // Fold per-worker journal dirs into the shared store. With one shared
  // --cache-dir the workers already appended directly and this is a
  // cheap no-op pass (import finds nothing unpublished); with per-worker
  // dirs (artifact fan-in) it replays each worker's streams and appends
  // only the records the shared store does not hold yet. Never publish
  // from a run that failed verification.
  if (!cache_dir.empty() && mismatches > 0) {
    std::fprintf(stderr,
                 "sweep_merge: verification failed — not publishing %s\n",
                 cache_dir.c_str());
  }
  if (!cache_dir.empty() && mismatches == 0) {
    const std::uint64_t pipeline_version = eval::scoring_pipeline_hash();
    cache::Store target(cache_dir);
    if (!target.open()) {
      std::fprintf(stderr, "sweep_merge: cannot create cache dir %s\n",
                   cache_dir.c_str());
      return 1;
    }
    eval::ScoreCache fold;
    fold.attach(target, pipeline_version);
    fold.tus().attach(target, pipeline_version);
    std::size_t imported = 0;
    for (const std::string& dir : import_dirs) {
      cache::Store source(dir);
      const bool scores_ok = fold.import_store(source, pipeline_version);
      const bool tus_ok =
          fold.tus().import_store(source, pipeline_version);
      if (scores_ok || tus_ok) {
        ++imported;
      } else {
        std::fprintf(stderr,
                     "sweep_merge: skipping stale/unreadable cache dir "
                     "%s\n",
                     dir.c_str());
      }
    }
    const std::size_t appended = fold.flush() + fold.tus().flush();
    std::printf(
        "folded %zu/%zu worker cache dirs into %s (%zu new records; %zu "
        "scores, %zu TUs, %zu plans total)\n",
        imported, import_dirs.size(), cache_dir.c_str(), appended,
        fold.size(), fold.tus().size(), fold.tus().plan_count());
  }

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "sweep_merge: merged sweep diverged from the "
                 "single-process reference\n");
    return 1;
  }
  return 0;
}
