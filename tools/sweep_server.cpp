// sweep_server: the resident evaluation daemon. Binds a Unix-domain or
// TCP endpoint, keeps all three cache layers of one ScoreCache warm in
// memory (score + TU layers attached to --cache-dir, build artifacts
// process-local), and serves sweep jobs submitted by sweep_client —
// scheduling their (cell x sample) units fair-share across concurrent
// jobs on the global work-stealing pool and streaming every completed
// sample back as it lands.
//
// SIGTERM/SIGINT begin a graceful drain: no new submissions, in-flight
// jobs finish streaming, caches flush to the store, then a clean exit —
// the lifecycle the CI smoke job exercises.
#include <csignal>
#include <cstdio>
#include <string>

#include "common.hpp"
#include "eval/suite.hpp"
#include "serve/server.hpp"
#include "support/strings.hpp"

using namespace pareval;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --listen ENDPOINT [options]\n"
      "  --listen EP        endpoint to serve: 'unix:/path/to.sock' (or a\n"
      "                     bare path), 'tcp:host:port', or 'tcp:port'\n"
      "                     (127.0.0.1)\n"
      "  --cache-dir DIR    attach the score + TU cache layers to a\n"
      "                     journaled cache directory (cache::Store):\n"
      "                     warm-replayed on start, flushed on drain.\n"
      "                     Without it the caches are memory-only (still\n"
      "                     warm across jobs, not across restarts)\n"
      "  --max-inflight N   concurrent (cell, sample) units on the pool\n"
      "                     (default: the pool's worker count)\n"
      "SIGTERM/SIGINT drain gracefully: submissions close, running jobs\n"
      "finish streaming, caches flush, then the server exits 0.\n",
      argv0);
  return 2;
}

serve::SweepServer* g_server = nullptr;

void handle_signal(int) {
  // Async-signal-safe: request_stop is one atomic store; the accept and
  // handler loops observe it on their next poll timeout.
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  serve::SweepServer::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int parsed = 0;
    if (arg == "--listen" && i + 1 < argc) {
      config.endpoint = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      config.cache_dir = argv[++i];
    } else if (arg == "--max-inflight" && i + 1 < argc &&
               tools::parse_int(argv[++i], &parsed) && parsed > 0) {
      config.max_inflight = static_cast<unsigned>(parsed);
    } else {
      return usage(argv[0]);
    }
  }
  if (config.endpoint.empty()) return usage(argv[0]);

  serve::SweepServer server(config, eval::Suite::paper());
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "sweep_server: %s\n", error.c_str());
    return 1;
  }
  std::printf("sweep_server: serving %s (pipeline %s%s%s)\n",
              server.endpoint().describe().c_str(),
              support::u64_to_hex(eval::scoring_pipeline_hash()).c_str(),
              config.cache_dir.empty() ? "" : ", cache dir ",
              config.cache_dir.c_str());
  std::fflush(stdout);

  server.wait();

  const eval::ScoreCache& cache = server.cache();
  std::printf(
      "sweep_server: drained (score layer %zu hits / %zu misses, build "
      "layer %zu hits / %zu misses, TU layer %zu+%zu hits / %zu misses)\n",
      cache.hits(), cache.misses(), cache.builds().hits(),
      cache.builds().misses(), cache.tus().hits(),
      cache.tus().persisted_hits(), cache.tus().misses());
  return 0;
}
