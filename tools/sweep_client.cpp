// sweep_client: the CLI for a running sweep_server. Verbs:
//
//   submit    submit a --spec job, stream its samples, and write the
//             folded sweep as merged.json — byte-identical to the batch
//             sweep_worker + sweep_merge output for the same spec (the
//             shared eval::merged_sweep_json builder; CI compares with
//             cmp)
//   status    print the server's status document (queue depth, per-job
//             progress, per-layer cache and journal stats)
//   cancel    cancel a job by id
//   fold      ask the server to import a worker's cache::Store directory
//   shutdown  begin a graceful server drain
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common.hpp"
#include "eval/shard.hpp"
#include "eval/suite.hpp"
#include "serve/client.hpp"
#include "support/strings.hpp"

using namespace pareval;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --connect ENDPOINT VERB [options]\n"
      "  --connect EP       server endpoint ('unix:/path', 'tcp:host:port',\n"
      "                     'tcp:port')\n"
      "verbs:\n"
      "  submit --spec FILE [--engine E] [--high-priority] [--no-logs]\n"
      "         [--out FILE] [--quiet]\n"
      "                     submit the spec, stream its samples (progress\n"
      "                     on stderr unless --quiet), and write the folded\n"
      "                     sweep (default: merged.json). --no-logs slims\n"
      "                     the stream to structured verdicts (the folded\n"
      "                     output then differs from the batch tools' by\n"
      "                     exactly the stripped log text)\n"
      "  status             print the server's status JSON\n"
      "  cancel JOB         cancel job JOB\n"
      "  fold DIR           import a worker's cache store directory\n"
      "  shutdown           begin a graceful server drain\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint;
  std::string verb;
  std::string spec_path;
  std::string out_path = "merged.json";
  std::string verb_arg;
  serve::Client::SubmitOptions opts;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      endpoint = argv[++i];
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--engine" && i + 1 < argc) {
      if (!tools::parse_engine_flag("sweep_client", argv[++i],
                                    &opts.engine)) {
        return 2;
      }
    } else if (arg == "--high-priority") {
      opts.high_priority = true;
    } else if (arg == "--no-logs") {
      opts.keep_logs = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (verb.empty()) {
      verb = arg;
    } else if (verb_arg.empty()) {
      verb_arg = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (endpoint.empty() || verb.empty()) return usage(argv[0]);

  serve::Client client;
  std::string error;
  if (!client.connect(endpoint, &error)) {
    std::fprintf(stderr, "sweep_client: %s\n", error.c_str());
    return 1;
  }

  if (verb == "status") {
    support::Json body;
    if (!client.status(&body, &error)) {
      std::fprintf(stderr, "sweep_client: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s\n", body.dump().c_str());
    return 0;
  }
  if (verb == "cancel") {
    int job = 0;
    if (verb_arg.empty() || !tools::parse_int(verb_arg.c_str(), &job)) {
      return usage(argv[0]);
    }
    serve::CancelReply reply;
    if (!client.cancel(job, &reply, &error)) {
      std::fprintf(stderr, "sweep_client: %s\n", error.c_str());
      return 1;
    }
    if (!reply.found) {
      std::fprintf(stderr, "sweep_client: job %d not found or already "
                   "settled\n",
                   job);
      return 1;
    }
    std::printf("cancelled job %d (%lld queued units skipped; in-flight "
                "units finish)\n",
                job, reply.skipped_units);
    return 0;
  }
  if (verb == "fold") {
    if (verb_arg.empty()) return usage(argv[0]);
    serve::FoldReply reply;
    if (!client.fold(verb_arg, &reply, &error)) {
      std::fprintf(stderr, "sweep_client: %s\n", error.c_str());
      return 1;
    }
    if (!reply.ok) {
      std::fprintf(stderr, "sweep_client: fold failed: %s\n",
                   reply.error.c_str());
      return 1;
    }
    std::printf("folded %s into the server (%lld score + %lld TU/plan "
                "records published)\n",
                verb_arg.c_str(), reply.score_records, reply.tu_records);
    return 0;
  }
  if (verb == "shutdown") {
    if (!client.shutdown(&error)) {
      std::fprintf(stderr, "sweep_client: %s\n", error.c_str());
      return 1;
    }
    std::printf("server draining\n");
    return 0;
  }
  if (verb != "submit") return usage(argv[0]);

  if (spec_path.empty()) {
    std::fprintf(stderr, "sweep_client: submit requires --spec FILE\n");
    return 2;
  }
  const eval::Suite& suite = eval::Suite::paper();
  eval::SweepSpec spec;
  if (!tools::load_spec_flag("sweep_client", spec_path, suite, &spec)) {
    return 2;
  }

  const std::size_t total =
      eval::sweep_cells(suite, spec).size() *
      static_cast<std::size_t>(spec.samples_per_task);
  tools::ProgressMeter meter(total);
  eval::SampleProgressFn progress;
  if (!quiet) {
    progress = [&meter](const eval::SampleRecord&) { meter.tick(); };
  }

  serve::Client::JobOutcome outcome;
  if (!client.submit(spec, opts, &outcome, &error, progress)) {
    std::fprintf(stderr, "sweep_client: %s\n", error.c_str());
    return 1;
  }
  std::printf("job %d: %zu sample records (%lld cells)%s\n", outcome.job,
              outcome.records.size(), outcome.cells,
              outcome.cancelled ? " [cancelled]" : "");
  if (outcome.cancelled) {
    std::fprintf(stderr,
                 "sweep_client: job was cancelled; partial streams do not "
                 "fold into a sweep\n");
    return 1;
  }

  std::vector<eval::TaskResult> tasks;
  try {
    tasks = serve::fold_records(suite, spec, opts.engine,
                                std::move(outcome.records));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_client: %s\n", e.what());
    return 1;
  }
  const support::Json merged =
      eval::merged_sweep_json(suite, spec, 1, tasks);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "sweep_client: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << merged.dump() << '\n';
  if (!out.good()) {
    std::fprintf(stderr, "sweep_client: write to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu cells)\n", out_path.c_str(), tasks.size());
  return 0;
}
