// sweep_worker: run one shard of the (cell × sample) sweep matrix and
// write the per-sample records as a shard file for sweep_merge.
//
// One CI job / host runs:
//   sweep_worker --pair all --shard-index $i --shard-count $K --out shard-$i.json
// and the fan-in job recombines the K files with sweep_merge. Merging is
// bit-identical to a single-process run_pair_sweep for any K (derived
// per-sample RNG streams + sample-index-order aggregation).
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "eval/shard.hpp"

using namespace pareval;

namespace {

bool parse_int(const char* text, int* out) {
  // atoi would turn a typo like "--pair cuda" into pair 0 silently.
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < INT_MIN ||
      v > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard-index I --shard-count K [options]\n"
      "  --pair <index|all>   pair to sweep (default: all)\n"
      "  --samples N          samples per cell (default: 25)\n"
      "  --seed S             base RNG seed (default: 1070)\n"
      "  --threads T          1 = serial; otherwise the global pool\n"
      "  --cache FILE         warm-start/persist the score cache\n"
      "  --out FILE           shard file to write (default: shard.json)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int shard_index = -1;
  int shard_count = 0;
  std::string pair_arg = "all";
  std::string out_path = "shard.json";
  std::string cache_path;
  eval::HarnessConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    int parsed = 0;
    if (arg == "--shard-index" && (v = value()) && parse_int(v, &parsed)) {
      shard_index = parsed;
    } else if (arg == "--shard-count" && (v = value()) &&
               parse_int(v, &parsed)) {
      shard_count = parsed;
    } else if (arg == "--pair" && (v = value())) {
      pair_arg = v;
    } else if (arg == "--samples" && (v = value()) &&
               parse_int(v, &parsed)) {
      config.samples_per_task = parsed;
    } else if (arg == "--seed" && (v = value())) {
      config.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--threads" && (v = value()) &&
               parse_int(v, &parsed) && parsed >= 0) {
      config.threads = static_cast<unsigned>(parsed);
    } else if (arg == "--cache" && (v = value())) {
      cache_path = v;
    } else if (arg == "--out" && (v = value())) {
      out_path = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (shard_index < 0 || shard_count < 1 || shard_index >= shard_count ||
      config.samples_per_task < 1) {
    return usage(argv[0]);
  }

  std::vector<llm::Pair> pairs;
  if (pair_arg == "all") {
    pairs = llm::all_pairs();
  } else {
    int index = -1;
    if (!parse_int(pair_arg.c_str(), &index) || index < 0 ||
        static_cast<std::size_t>(index) >= llm::all_pairs().size()) {
      std::fprintf(stderr, "sweep_worker: --pair must be 0..%zu or 'all'\n",
                   llm::all_pairs().size() - 1);
      return 2;
    }
    pairs.push_back(llm::all_pairs()[static_cast<std::size_t>(index)]);
  }

  if (!cache_path.empty() && eval::ScoreCache::global().load(cache_path)) {
    std::printf("warm-started score cache from %s (%zu entries)\n",
                cache_path.c_str(), eval::ScoreCache::global().size());
  }

  std::vector<eval::ShardResult> shards;
  for (const llm::Pair& pair : pairs) {
    std::printf("shard %d/%d of %s (N=%d)...\n", shard_index, shard_count,
                llm::pair_name(pair).c_str(), config.samples_per_task);
    shards.push_back(
        eval::run_shard(pair, shard_index, shard_count, config));
    std::printf("  %zu sample records\n", shards.back().records.size());
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "sweep_worker: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << eval::shard_file_text(shards);
  if (!out.good()) {
    std::fprintf(stderr, "sweep_worker: write to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!cache_path.empty()) {
    if (eval::ScoreCache::global().save(cache_path)) {
      std::printf("saved score cache to %s (%zu entries, %zu hits / %zu "
                  "misses this run)\n",
                  cache_path.c_str(), eval::ScoreCache::global().size(),
                  eval::ScoreCache::global().hits(),
                  eval::ScoreCache::global().misses());
    } else {
      std::fprintf(stderr, "sweep_worker: could not save cache to %s\n",
                   cache_path.c_str());
    }
  }
  return 0;
}
