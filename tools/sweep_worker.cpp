// sweep_worker: run one shard of a (suite, spec) sweep's (cell × sample)
// matrix and write the per-sample records as a shard file for sweep_merge.
//
// One CI job / host runs:
//   sweep_worker --spec spec.json --shard-index $i --shard-count $K --out shard-$i.json
// and the fan-in job recombines the K files with sweep_merge. Merging is
// bit-identical to a single-process run_sweep for any K (derived
// per-sample RNG streams + sample-index-order aggregation). Every shard
// file embeds the spec and its hash, so the merger refuses shards of a
// different sweep.
//
// Without --spec, the classic flags (--pair/--samples/--seed) build the
// paper's default spec, optionally restricted to one pair.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "buildsim/tucache.hpp"
#include "common.hpp"
#include "eval/shard.hpp"
#include "support/cachestore.hpp"
#include "support/strings.hpp"

using namespace pareval;
using tools::parse_int;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard-index I --shard-count K [options]\n"
      "  --spec FILE          declarative sweep spec (JSON); exclusive\n"
      "                       with --pair/--samples/--seed\n"
      "  --pair <index|all>   pair to sweep (default: all)\n"
      "  --samples N          samples per cell (default: 25)\n"
      "  --seed S             base RNG seed (default: 1070)\n"
      "  --threads T          1 = serial; otherwise the global pool\n"
      "  --engine E           Execute-stage engine: interp (default) or\n"
      "                       vm (bytecode; bit-identical scores, faster).\n"
      "                       Recorded in the shard file; sweep_merge\n"
      "                       refuses to combine mixed-engine shards\n"
      "  --cache-dir DIR      warm-start from and publish to a shared\n"
      "                       journaled cache directory (cache::Store).\n"
      "                       Any number of workers may share one DIR\n"
      "                       concurrently; no merge step is needed\n"
      "  --cache FILE         [deprecated: use --cache-dir]\n"
      "                       warm-start/persist the score cache\n"
      "  --cache-delta FILE   [deprecated: use --cache-dir]\n"
      "                       write only the cache entries this run added\n"
      "                       (ship with the shard for sweep_merge\n"
      "                       --merge-cache to fold into a published cache)\n"
      "  --tu-cache FILE      [deprecated: use --cache-dir]\n"
      "                       warm-start/persist the TU compile cache\n"
      "                       (pareval-tu-cache-v1: TU outcomes + per-build\n"
      "                       compile-plan digests)\n"
      "  --tu-cache-delta FILE  [deprecated: use --cache-dir]\n"
      "                       write only the TU entries/plans this run\n"
      "                       added (for sweep_merge --merge-tu-cache)\n"
      "  --out FILE           shard file to write (default: shard.json)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int shard_index = -1;
  int shard_count = 0;
  std::string pair_arg;
  std::string spec_path;
  std::string out_path = "shard.json";
  std::string cache_dir;
  std::string cache_path;
  std::string cache_delta_path;
  std::string tu_cache_path;
  std::string tu_cache_delta_path;
  bool samples_set = false, seed_set = false;
  eval::HarnessConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    int parsed = 0;
    if (arg == "--shard-index" && (v = value()) && parse_int(v, &parsed)) {
      shard_index = parsed;
    } else if (arg == "--shard-count" && (v = value()) &&
               parse_int(v, &parsed)) {
      shard_count = parsed;
    } else if (arg == "--spec" && (v = value())) {
      spec_path = v;
    } else if (arg == "--pair" && (v = value())) {
      pair_arg = v;
    } else if (arg == "--samples" && (v = value()) &&
               parse_int(v, &parsed)) {
      config.samples_per_task = parsed;
      samples_set = true;
    } else if (arg == "--seed" && (v = value())) {
      config.seed = std::strtoull(v, nullptr, 0);
      seed_set = true;
    } else if (arg == "--threads" && (v = value()) &&
               parse_int(v, &parsed) && parsed >= 0) {
      config.threads = static_cast<unsigned>(parsed);
    } else if (arg == "--engine" && (v = value())) {
      if (!tools::parse_engine_flag("sweep_worker", v, &config.engine)) {
        return 2;
      }
    } else if (arg == "--cache-dir" && (v = value())) {
      cache_dir = v;
    } else if (arg == "--cache" && (v = value())) {
      tools::warn_deprecated("sweep_worker", "--cache");
      cache_path = v;
    } else if (arg == "--cache-delta" && (v = value())) {
      tools::warn_deprecated("sweep_worker", "--cache-delta");
      cache_delta_path = v;
    } else if (arg == "--tu-cache" && (v = value())) {
      tools::warn_deprecated("sweep_worker", "--tu-cache");
      tu_cache_path = v;
    } else if (arg == "--tu-cache-delta" && (v = value())) {
      tools::warn_deprecated("sweep_worker", "--tu-cache-delta");
      tu_cache_delta_path = v;
    } else if (arg == "--out" && (v = value())) {
      out_path = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (shard_index < 0 || shard_count < 1 || shard_index >= shard_count ||
      config.samples_per_task < 1) {
    return usage(argv[0]);
  }
  if (!spec_path.empty() && (!pair_arg.empty() || samples_set || seed_set)) {
    std::fprintf(stderr,
                 "sweep_worker: --spec is exclusive with --pair/--samples/"
                 "--seed (the spec declares them)\n");
    return 2;
  }
  if (!cache_dir.empty() &&
      (!cache_path.empty() || !cache_delta_path.empty() ||
       !tu_cache_path.empty() || !tu_cache_delta_path.empty())) {
    std::fprintf(stderr,
                 "sweep_worker: --cache-dir is exclusive with the legacy "
                 "--cache/--cache-delta/--tu-cache/--tu-cache-delta flags\n");
    return 2;
  }

  const eval::Suite& suite = eval::Suite::paper();
  eval::SweepSpec spec;
  if (!spec_path.empty()) {
    if (!tools::load_spec_flag("sweep_worker", spec_path, suite, &spec)) {
      return 2;
    }
  } else {
    spec = eval::SweepSpec::paper();
    spec.samples_per_task = config.samples_per_task;
    spec.seed = config.seed;
    if (!pair_arg.empty() && pair_arg != "all") {
      int index = -1;
      if (!parse_int(pair_arg.c_str(), &index) || index < 0 ||
          static_cast<std::size_t>(index) >= suite.pairs().size()) {
        std::fprintf(stderr,
                     "sweep_worker: --pair must be 0..%zu or 'all'\n",
                     suite.pairs().size() - 1);
        return 2;
      }
      spec.pairs = {
          llm::pair_key(suite.pairs()[static_cast<std::size_t>(index)])};
    }
    const std::string invalid = spec.validate(suite);
    if (!invalid.empty()) {
      std::fprintf(stderr, "sweep_worker: invalid spec: %s\n",
                   invalid.c_str());
      return 2;
    }
  }

  std::optional<cache::Store> store;
  if (!cache_dir.empty()) {
    if (!tools::open_cache_dir("sweep_worker", cache_dir, store)) return 1;
    tools::attach_cache_layers(*store, eval::ScoreCache::global(),
                               eval::scoring_pipeline_hash());
  }
  if (!cache_path.empty() && eval::ScoreCache::global().load(cache_path)) {
    std::printf("warm-started score cache from %s (%zu entries)\n",
                cache_path.c_str(), eval::ScoreCache::global().size());
  }
  if (!tu_cache_path.empty() &&
      eval::ScoreCache::global().tus().load(tu_cache_path,
                                            eval::scoring_pipeline_hash())) {
    std::printf("warm-started TU compile cache from %s (%zu TUs, %zu "
                "plans)\n",
                tu_cache_path.c_str(),
                eval::ScoreCache::global().tus().size(),
                eval::ScoreCache::global().tus().plan_count());
  }

  std::printf("shard %d/%d of spec %s (%zu cells, N=%d, engine %s)...\n",
              shard_index, shard_count,
              support::u64_to_hex(eval::spec_hash(spec)).c_str(),
              eval::sweep_cells(suite, spec).size(), spec.samples_per_task,
              minic::engine_key(config.engine));
  const eval::ShardResult shard =
      eval::run_shard(suite, spec, shard_index, shard_count, config);
  std::printf("  %zu sample records\n", shard.records.size());

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "sweep_worker: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << eval::shard_file_text({shard});
  if (!out.good()) {
    std::fprintf(stderr, "sweep_worker: write to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  eval::ScoreCache& cache = eval::ScoreCache::global();
  if (store.has_value()) {
    const std::size_t score_records = cache.flush();
    const std::size_t tu_records = cache.tus().flush();
    const auto score_stats = store->stats(eval::ScoreCache::kStream);
    const auto tu_stats =
        store->stats(buildsim::TuCompileCache::kTuStream);
    std::printf(
        "flushed %zu score + %zu TU/plan records to %s (score journal "
        "gen %llu / %zu bytes, TU journal gen %llu / %zu bytes; score "
        "layer %zu hits / %zu misses, build layer %zu hits / %zu misses, "
        "TU layer %zu+%zu hits / %zu misses this run)\n",
        score_records, tu_records, cache_dir.c_str(),
        static_cast<unsigned long long>(score_stats.generation),
        score_stats.journal_bytes,
        static_cast<unsigned long long>(tu_stats.generation),
        tu_stats.journal_bytes, cache.hits(), cache.misses(),
        cache.builds().hits(), cache.builds().misses(),
        cache.tus().hits(), cache.tus().persisted_hits(),
        cache.tus().misses());
  }
  if (!cache_path.empty()) {
    if (cache.save(cache_path)) {
      std::printf("saved score cache to %s (%zu entries, score layer "
                  "%zu hits / %zu misses, build layer %zu hits / %zu "
                  "misses, TU layer %zu+%zu hits / %zu misses this run)\n",
                  cache_path.c_str(), cache.size(), cache.hits(),
                  cache.misses(), cache.builds().hits(),
                  cache.builds().misses(), cache.tus().hits(),
                  cache.tus().persisted_hits(), cache.tus().misses());
    } else {
      std::fprintf(stderr, "sweep_worker: could not save cache to %s\n",
                   cache_path.c_str());
    }
  }
  if (!tu_cache_path.empty()) {
    if (cache.tus().save(tu_cache_path, eval::scoring_pipeline_hash())) {
      std::printf("saved TU compile cache to %s (%zu TUs, %zu plans)\n",
                  tu_cache_path.c_str(), cache.tus().size(),
                  cache.tus().plan_count());
    } else {
      std::fprintf(stderr, "sweep_worker: could not save TU cache to %s\n",
                   tu_cache_path.c_str());
    }
  }
  if (!tu_cache_delta_path.empty()) {
    std::size_t tu_delta_entries = 0;
    if (cache.tus().save_delta(tu_cache_delta_path,
                               eval::scoring_pipeline_hash(),
                               &tu_delta_entries)) {
      std::printf("saved TU-cache delta to %s (%zu entries added this "
                  "run)\n",
                  tu_cache_delta_path.c_str(), tu_delta_entries);
    } else {
      std::fprintf(stderr,
                   "sweep_worker: could not save TU-cache delta to %s\n",
                   tu_cache_delta_path.c_str());
    }
  }
  if (!cache_delta_path.empty()) {
    std::size_t delta_entries = 0;
    if (cache.save_delta(cache_delta_path, eval::scoring_pipeline_hash(),
                         &delta_entries)) {
      std::printf("saved score-cache delta to %s (%zu entries added this "
                  "run)\n",
                  cache_delta_path.c_str(), delta_entries);
    } else {
      std::fprintf(stderr, "sweep_worker: could not save cache delta to "
                   "%s\n",
                   cache_delta_path.c_str());
    }
  }
  return 0;
}
