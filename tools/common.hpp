#pragma once
// Shared flag-parsing and cache-wiring helpers for the CLI tools
// (sweep_worker, sweep_merge, bench_figures, sweep_server, sweep_client).
// Each tool used to hand-roll these — strict int parsing, the --engine
// spelling, --spec load + validation, --cache-dir open/attach and its
// banner, the deprecation warning for the legacy per-file cache flags —
// with drift between the copies. Header-only because the build globs
// every tools/*.cpp into its own executable.

#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <climits>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "eval/harness.hpp"
#include "eval/spec.hpp"
#include "minic/engine.hpp"
#include "support/cachestore.hpp"

namespace pareval::tools {

/// Strict base-10 int parse: the whole token, no overflow. atoi would
/// turn a typo like "--pair cuda" into pair 0 silently. strtol alone is
/// not strict enough either — it skips leading whitespace and accepts a
/// '+' sign, so `--samples " 5"` would quietly parse; only an optional
/// '-' followed by digits is accepted here.
inline bool parse_int(const char* text, int* out) {
  if (text[0] != '-' && (text[0] < '0' || text[0] > '9')) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < INT_MIN ||
      v > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

/// Legacy per-file cache flags still work, but each process warns once
/// *per flag*: the journaled --cache-dir store subsumes them without the
/// delta/merge choreography. (A single process-wide latch would swallow
/// the second flag's warning when a tool passes, say, both --cache-in and
/// --cache-out.)
inline void warn_deprecated(const char* tool, const char* flag) {
  static std::mutex mu;
  static std::set<std::string> warned;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!warned.emplace(flag).second) return;
  }
  std::fprintf(stderr,
               "%s: %s is deprecated; prefer --cache-dir DIR (journaled "
               "multi-writer cache store)\n",
               tool, flag);
}

/// Parse an --engine value ("interp" / "vm"), printing the usage error
/// itself so every tool rejects the flag with one spelling.
inline bool parse_engine_flag(const char* tool, const char* value,
                              minic::EngineKind* out) {
  const auto kind = minic::engine_from_key(value);
  if (!kind.has_value()) {
    std::fprintf(stderr, "%s: --engine must be 'interp' or 'vm'\n", tool);
    return false;
  }
  *out = *kind;
  return true;
}

/// The --spec front door: load + parse + validate against `suite`,
/// printing the failure. False = the tool should exit nonzero.
inline bool load_spec_flag(const char* tool, const std::string& path,
                           const eval::Suite& suite, eval::SweepSpec* out) {
  std::string error;
  if (!eval::load_and_validate_spec(path, suite, out, &error)) {
    std::fprintf(stderr, "%s: %s\n", tool, error.c_str());
    return false;
  }
  return true;
}

/// Open (mkdir -p) a --cache-dir store, printing the failure.
inline bool open_cache_dir(const char* tool, const std::string& dir,
                           std::optional<cache::Store>& store) {
  store.emplace(dir);
  if (!store->open()) {
    std::fprintf(stderr, "%s: cannot create cache dir %s\n", tool,
                 dir.c_str());
    store.reset();
    return false;
  }
  return true;
}

/// Warm flags of one attach_cache_layers call.
struct CacheAttach {
  bool warm_scores = false;
  bool warm_tus = false;
  bool warm_links = false;
};

/// Attach `cache`'s score + TU + link layers to a --cache-dir store and
/// print the uniform warm/cold banner every tool used to format by hand.
/// (The TU attach also replays the obj1 warm-object stream; warm_tus
/// covers both.)
inline CacheAttach attach_cache_layers(cache::Store& store,
                                       eval::ScoreCache& cache,
                                       std::uint64_t version,
                                       bool banner = true) {
  CacheAttach out;
  out.warm_scores = cache.attach(store, version);
  out.warm_tus = cache.tus().attach(store, version);
  out.warm_links = cache.links().attach(store, version);
  if (banner) {
    std::printf("cache dir %s: score stream %s (%zu entries), TU streams "
                "%s (%zu TUs, %zu plans), link stream %s (%zu links)\n",
                store.dir().c_str(), out.warm_scores ? "warm" : "cold",
                cache.size(), out.warm_tus ? "warm" : "cold",
                cache.tus().size(), cache.tus().plan_count(),
                out.warm_links ? "warm" : "cold", cache.links().size());
  }
  return out;
}

/// Thread-safe completed/total meter for streamed sweeps, designed to
/// ride eval::SampleProgressFn / the sweep client's per-sample hook.
/// Prints to stderr (results go to stdout) every `stride` ticks and at
/// completion; stride 0 picks ~1% of the total.
class ProgressMeter {
 public:
  explicit ProgressMeter(std::size_t total, std::size_t stride = 0)
      : total_(total),
        stride_(stride != 0 ? stride
                            : (total / 100 != 0 ? total / 100 : 1)) {}

  void tick() {
    const std::size_t done = done_.fetch_add(1) + 1;
    if (done % stride_ == 0 || done == total_) {
      std::fprintf(stderr, "\r  %zu/%zu samples", done, total_);
      if (done == total_) std::fprintf(stderr, "\n");
    }
  }

  std::size_t done() const noexcept { return done_.load(); }

 private:
  std::size_t total_;
  std::size_t stride_;
  std::atomic<std::size_t> done_{0};
};

}  // namespace pareval::tools
