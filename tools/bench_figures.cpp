// bench_figures: regenerate every figure and table of the paper off ONE
// (suite, spec) sweep, with every cell overlapped on the global
// work-stealing pool and every score drawn through one injected
// ScoreCache. The sweep's cells ride the pool's High priority lane, so
// figure-critical work drains before any other (Normal) tasks a host
// process may have queued.
//
// With --cache FILE the ScoreCache is warm-started from a previous run
// (self-invalidating via the scoring-pipeline hash) and persisted back, so
// a second run is mostly cache hits — the warm-start speedup is recorded
// in BENCH_figures.json and visible in the CI bench job's logs. With
// --spec FILE the sweep covers a declarative subset instead of the full
// paper matrix.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "buildsim/linkcache.hpp"
#include "buildsim/tucache.hpp"
#include "common.hpp"
#include "eval/classify.hpp"
#include "execsim/driver.hpp"
#include "eval/report.hpp"
#include "eval/shard.hpp"
#include "minic/engine.hpp"
#include "support/cachestore.hpp"
#include "support/io.hpp"
#include "support/par.hpp"
#include "support/strings.hpp"

using namespace pareval;
using support::Json;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --spec FILE        declarative sweep spec (JSON); exclusive with\n"
      "                     --samples/--seed\n"
      "  --cache-dir DIR    warm-start from and publish to a journaled\n"
      "                     cache directory (cache::Store) shared with\n"
      "                     sweep_worker/sweep_merge\n"
      "  --cache FILE       [deprecated: use --cache-dir]\n"
      "                     load/save the persistent score cache\n"
      "  --tu-cache FILE    [deprecated: use --cache-dir]\n"
      "                     load/save the persistent TU compile cache\n"
      "                     (pareval-tu-cache-v1)\n"
      "  --cache-stats FILE write per-layer cache stats (score / build /\n"
      "                     TU, plus per-stream journal counters when\n"
      "                     --cache-dir is given) as JSON with a pinned\n"
      "                     key order, so CI artifact diffs are stable\n"
      "  --no-score-layer   do not attach/flush the persisted score\n"
      "                     stream: every sample re-scores through a\n"
      "                     real Build stage, so warm-start benches\n"
      "                     measure the Build layers (TU / object /\n"
      "                     link caches) instead of score memoization\n"
      "  --no-object-layer  disable the warm-object store (serialized\n"
      "                     TU objects + link cache): persisted TU\n"
      "                     entries revalidate but successful TUs\n"
      "                     recompile from source — the TU-warm\n"
      "                     baseline the object-warm bench pass is\n"
      "                     gated against\n"
      "  --samples N        samples per cell (default: 25)\n"
      "  --seed S           base RNG seed (default: 1070)\n"
      "  --engine E         Execute-stage engine: interp (default) or vm\n"
      "                     (bytecode; bit-identical figures, faster).\n"
      "                     Recorded in the timing JSON's context\n"
      "  --out FILE         timing JSON (default: BENCH_figures.json)\n"
      "  --print-cache-key  print the scoring-pipeline hash and exit\n",
      argv0);
  return 2;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string cache_dir;
  std::string cache_path;
  std::string tu_cache_path;
  std::string cache_stats_path;
  std::string spec_path;
  std::string out_path = "BENCH_figures.json";
  int samples = 25;
  std::uint64_t seed = 1070;
  minic::EngineKind engine = minic::EngineKind::Interp;
  bool samples_set = false, seed_set = false;
  bool no_score_layer = false;
  bool no_object_layer = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-cache-key") {
      std::printf("%s\n",
                  support::u64_to_hex(eval::scoring_pipeline_hash())
                      .c_str());
      return 0;
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      tools::warn_deprecated("bench_figures", "--cache");
      cache_path = argv[++i];
    } else if (arg == "--tu-cache" && i + 1 < argc) {
      tools::warn_deprecated("bench_figures", "--tu-cache");
      tu_cache_path = argv[++i];
    } else if (arg == "--cache-stats" && i + 1 < argc) {
      cache_stats_path = argv[++i];
    } else if (arg == "--no-score-layer") {
      no_score_layer = true;
    } else if (arg == "--no-object-layer") {
      no_object_layer = true;
    } else if (arg == "--samples" && i + 1 < argc) {
      if (!tools::parse_int(argv[++i], &samples)) return usage(argv[0]);
      samples_set = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
      seed_set = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      if (!tools::parse_engine_flag("bench_figures", argv[++i], &engine)) {
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (samples < 1) return usage(argv[0]);
  if (!spec_path.empty() && (samples_set || seed_set)) {
    std::fprintf(stderr,
                 "bench_figures: --spec is exclusive with --samples/--seed "
                 "(the spec declares them)\n");
    return 2;
  }
  if (!cache_dir.empty() &&
      (!cache_path.empty() || !tu_cache_path.empty())) {
    std::fprintf(stderr,
                 "bench_figures: --cache-dir is exclusive with the legacy "
                 "--cache/--tu-cache flags\n");
    return 2;
  }

  const eval::Suite& suite = eval::Suite::paper();
  eval::SweepSpec spec;
  if (!spec_path.empty()) {
    if (!tools::load_spec_flag("bench_figures", spec_path, suite, &spec)) {
      return 2;
    }
  } else {
    spec = eval::SweepSpec::paper();
    spec.samples_per_task = samples;
    spec.seed = seed;
  }

  // Injected cache: this process's scores go through one local instance
  // handed to the harness via HarnessConfig, not the process-wide global.
  eval::ScoreCache cache;
  eval::HarnessConfig config;
  config.score_cache = &cache;
  config.engine = engine;
  config.high_priority = true;  // figure-critical cells drain first

  if (no_object_layer) cache.enable_object_layer(false);

  bool preloaded = false;
  bool tu_preloaded = false;
  std::size_t loaded_entries = 0;
  std::optional<cache::Store> store;
  if (!cache_dir.empty()) {
    if (!tools::open_cache_dir("bench_figures", cache_dir, store)) return 1;
    if (no_score_layer) {
      // Build-layer bench mode: the score stream is withheld, so every
      // sample pays a real Build stage against whatever the TU / object /
      // link streams hold.
      tu_preloaded =
          cache.tus().attach(*store, eval::scoring_pipeline_hash());
      cache.links().attach(*store, eval::scoring_pipeline_hash());
      std::printf("cache dir %s: score stream withheld (--no-score-layer), "
                  "TU streams %s (%zu TUs, %zu plans), link stream "
                  "(%zu links)\n",
                  store->dir().c_str(), tu_preloaded ? "warm" : "cold",
                  cache.tus().size(), cache.tus().plan_count(),
                  cache.links().size());
    } else {
      const tools::CacheAttach attached = tools::attach_cache_layers(
          *store, cache, eval::scoring_pipeline_hash());
      preloaded = attached.warm_scores;
      tu_preloaded = attached.warm_tus;
      loaded_entries = preloaded ? cache.size() : 0;
    }
  }
  if (!cache_path.empty()) {
    preloaded = cache.load(cache_path);
    loaded_entries = preloaded ? cache.size() : 0;
    std::printf("score cache: %s (%zu entries)\n",
                preloaded ? "warm-started" : "cold start",
                loaded_entries);
  }
  if (!tu_cache_path.empty()) {
    tu_preloaded =
        cache.tus().load(tu_cache_path, eval::scoring_pipeline_hash());
    std::printf("TU compile cache: %s (%zu TUs, %zu plans)\n",
                tu_preloaded ? "warm-started" : "cold start",
                cache.tus().size(), cache.tus().plan_count());
  }

  // One sweep over the whole spec; every figure below reads from it.
  const auto t_sweep = std::chrono::steady_clock::now();
  std::printf("sweeping spec %s (%zu cells, N=%d, engine %s)...\n",
              support::u64_to_hex(eval::spec_hash(spec)).c_str(),
              eval::sweep_cells(suite, spec).size(), spec.samples_per_task,
              minic::engine_key(engine));
  const std::vector<eval::TaskResult> all =
      eval::run_sweep(suite, spec, config);
  const double sweep_ms = ms_since(t_sweep);
  std::printf("\nsweep: %.1f ms, score layer %zu hits / %zu misses, "
              "build layer %zu hits / %zu misses (%zu builds performed), "
              "TU layer %zu+%zu hits / %zu misses (%zu TU compiles, %zu "
              "plan hits)\n\n",
              sweep_ms, cache.hits(), cache.misses(),
              cache.builds().hits(), cache.builds().misses(),
              cache.builds().misses(), cache.tus().hits(),
              cache.tus().persisted_hits(), cache.tus().misses(),
              cache.tus().misses(), cache.tus().plan_hits());

  const auto t_reports = std::chrono::steady_clock::now();
  std::printf("%s\n",
              eval::stage_breakdown_report(suite, spec, all).c_str());
  std::printf("%s\n", eval::figure2_reports(suite, spec, all).c_str());
  const auto classification = eval::classify_failures(all);
  std::printf("%s\n",
              eval::figure3_report(suite, spec, classification).c_str());
  std::printf("%s\n", eval::figure4_report(suite, spec, all).c_str());
  std::printf("%s\n", eval::figure5_report(suite, spec, all).c_str());
  std::printf("%s\n", eval::table1_report(suite).c_str());
  std::printf("%s\n", eval::table2_report(suite, all).c_str());
  const double reports_ms = ms_since(t_reports);

  if (store.has_value()) {
    const std::size_t score_records = cache.flush();
    const std::size_t tu_records = cache.tus().flush();
    const std::size_t link_records = cache.links().flush();
    std::printf("flushed %zu score + %zu TU/plan/object + %zu link "
                "records to %s (score journal gen %llu / %zu bytes)\n",
                score_records, tu_records, link_records, cache_dir.c_str(),
                static_cast<unsigned long long>(
                    store->stats(eval::ScoreCache::kStream).generation),
                store->journal_bytes(eval::ScoreCache::kStream));
  }
  if (!cache_path.empty()) {
    if (cache.save(cache_path)) {
      std::printf("saved score cache to %s (%zu entries)\n",
                  cache_path.c_str(), cache.size());
    } else {
      std::fprintf(stderr, "bench_figures: could not save cache to %s\n",
                   cache_path.c_str());
    }
  }
  if (!tu_cache_path.empty()) {
    if (cache.tus().save(tu_cache_path, eval::scoring_pipeline_hash())) {
      std::printf("saved TU compile cache to %s (%zu TUs, %zu plans)\n",
                  tu_cache_path.c_str(), cache.tus().size(),
                  cache.tus().plan_count());
    } else {
      std::fprintf(stderr,
                   "bench_figures: could not save TU cache to %s\n",
                   tu_cache_path.c_str());
    }
  }

  Json root = Json::object();
  Json context = Json::object();
  context.set("samples_per_task", spec.samples_per_task);
  context.set("spec_hash", support::u64_to_hex(eval::spec_hash(spec)));
  context.set("spec_file", spec_path);
  context.set("engine", minic::engine_key(engine));
  context.set("threads",
              static_cast<long long>(support::hardware_threads()));
  context.set("cache_dir", cache_dir);
  context.set("cache_file", cache_path);
  context.set("cache_preloaded", preloaded);
  context.set("cache_entries_loaded",
              static_cast<long long>(loaded_entries));
  context.set("cache_hits", static_cast<long long>(cache.hits()));
  context.set("cache_misses", static_cast<long long>(cache.misses()));
  // Middle (build-artifact) layer: misses == builds actually performed, so
  // the artifact uploaded by the CI bench job records how much build work
  // the cache layers elided.
  context.set("build_cache_hits",
              static_cast<long long>(cache.builds().hits()));
  context.set("build_cache_misses",
              static_cast<long long>(cache.builds().misses()));
  // Lower (TU compile) layer: misses == TU compiles actually performed;
  // the dedupe ratio is the fraction of TU lookups a compile was elided
  // for (in-memory sharing across builds + persisted failed-TU hits).
  context.set("tu_cache_file", tu_cache_path);
  context.set("tu_cache_preloaded", tu_preloaded);
  context.set("tu_cache_hits", static_cast<long long>(cache.tus().hits()));
  context.set("tu_cache_persisted_hits",
              static_cast<long long>(cache.tus().persisted_hits()));
  context.set("tu_cache_misses",
              static_cast<long long>(cache.tus().misses()));
  context.set("tu_cache_lookups",
              static_cast<long long>(cache.tus().lookups()));
  context.set("tu_plan_hits",
              static_cast<long long>(cache.tus().plan_hits()));
  const std::size_t tu_lookups = cache.tus().lookups();
  const double tu_dedupe_ratio =
      tu_lookups == 0
          ? 0.0
          : static_cast<double>(tu_lookups - cache.tus().misses()) /
                static_cast<double>(tu_lookups);
  context.set("tu_dedupe_ratio", tu_dedupe_ratio);
  context.set("score_layer", !no_score_layer);
  context.set("object_layer", !no_object_layer);
  context.set("tu_obj_hits",
              static_cast<long long>(cache.tus().obj_hits()));
  context.set("link_cache_hits",
              static_cast<long long>(cache.links().hits()));
  context.set("link_cache_misses",
              static_cast<long long>(cache.links().misses()));
  root.set("context", std::move(context));

  if (!cache_stats_path.empty()) {
    // One stats object per layer, keys in a pinned, documented order (the
    // Json codec preserves insertion order), so the CACHE_stats.json CI
    // artifact diffs cleanly run over run instead of shifting with
    // whatever map-iteration order a JSON post-processor happens to use.
    Json stats = Json::object();
    stats.set("cache_dir", cache_dir);
    stats.set("cache_file", cache_path);
    stats.set("cache_preloaded", preloaded);
    stats.set("tu_cache_file", tu_cache_path);
    stats.set("tu_cache_preloaded", tu_preloaded);
    // Per-layer blocks come from the layers' own stats() (the uniform
    // persistence surface), so this artifact and any future sweep_server
    // endpoint report identical shapes. With --cache-dir each layer also
    // carries its journal counters (generation, appends, torn/CRC drops,
    // compactions, bytes) from the attached store.
    Json score_layer = cache.stats();
    if (store.has_value()) {
      score_layer.set("journal",
                      store->stats_json(eval::ScoreCache::kStream));
    }
    stats.set("score", std::move(score_layer));
    Json build_layer = Json::object();
    build_layer.set("hits", static_cast<long long>(cache.builds().hits()));
    build_layer.set("misses",
                    static_cast<long long>(cache.builds().misses()));
    stats.set("build", std::move(build_layer));
    Json tu_layer = cache.tus().stats();
    tu_layer.set("dedupe_ratio", tu_dedupe_ratio);
    if (store.has_value()) {
      tu_layer.set("journal",
                   store->stats_json(buildsim::TuCompileCache::kTuStream));
      tu_layer.set(
          "plan_journal",
          store->stats_json(buildsim::TuCompileCache::kPlanStream));
      tu_layer.set(
          "obj_journal",
          store->stats_json(buildsim::TuCompileCache::kObjStream));
    }
    stats.set("tu", std::move(tu_layer));
    Json link_layer = cache.links().stats();
    if (store.has_value()) {
      link_layer.set("journal",
                     store->stats_json(buildsim::LinkCache::kStream));
    }
    stats.set("link", std::move(link_layer));
    // Process-wide ground truth for the warm-start gates: how many
    // sources were actually parsed and programs actually linked (the
    // cache layers above elide these), plus the wall time spent inside
    // the Build stage — the object-warm CI gate's numerator.
    const execsim::DriverCounters drv = execsim::driver_counters();
    Json driver = Json::object();
    driver.set("parses", static_cast<long long>(drv.parses));
    driver.set("links", static_cast<long long>(drv.links));
    // Bytecode coverage telemetry: tree-walk fallback instructions VM
    // runs executed (0 = everything the sweep ran was fully lowered).
    driver.set("tree_fallbacks", static_cast<long long>(drv.tree_fallbacks));
    stats.set("driver", std::move(driver));
    stats.set("build_wall_ms",
              static_cast<double>(eval::build_stage_nanos()) / 1e6);
    stats.set("wall_ms", sweep_ms);
    // Atomic like the cache files: the CI jq gate reads this artifact, so
    // a torn or truncated write must never be published.
    if (!support::atomic_write_file(cache_stats_path,
                                    stats.dump() + '\n')) {
      std::fprintf(stderr, "bench_figures: cannot write %s\n",
                   cache_stats_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cache_stats_path.c_str());
  }
  Json benchmarks = Json::array();
  auto bench_entry = [](const char* name, double ms) {
    Json b = Json::object();
    b.set("name", name);
    b.set("real_time", ms);
    b.set("time_unit", "ms");
    return b;
  };
  benchmarks.push_back(bench_entry("figures_sweep", sweep_ms));
  benchmarks.push_back(bench_entry("figures_reports", reports_ms));
  benchmarks.push_back(bench_entry("figures_total", sweep_ms + reports_ms));
  // Wall time inside ScoringPipeline::build_stage alone — what the
  // object-warm bench passes compare (scores are bit-identical across
  // cold / TU-warm / object-warm, only Build cost moves).
  benchmarks.push_back(bench_entry(
      "figures_build_stage",
      static_cast<double>(eval::build_stage_nanos()) / 1e6));
  root.set("benchmarks", std::move(benchmarks));

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_figures: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << root.dump() << '\n';
  std::printf("wrote %s (sweep %.1f ms, %zu hits / %zu misses%s)\n",
              out_path.c_str(), sweep_ms, cache.hits(), cache.misses(),
              preloaded ? ", warm start" : "");
  return out.good() ? 0 : 1;
}
