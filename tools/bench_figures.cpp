// bench_figures: regenerate every figure and table of the paper off ONE
// sweep, with all three pair sweeps overlapped on the global work-stealing
// pool and every score drawn through one shared ScoreCache. Replaces the
// retired per-figure drivers (bench_fig2_*, bench_fig3/4/5, bench_table*),
// which each re-ran the full sweep serially end-to-end.
//
// With --cache FILE the ScoreCache is warm-started from a previous run
// (self-invalidating via the scoring-pipeline hash) and persisted back, so
// a second run is mostly cache hits — the warm-start speedup is recorded
// in BENCH_figures.json and visible in the CI bench job's logs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "eval/classify.hpp"
#include "eval/report.hpp"
#include "eval/shard.hpp"
#include "support/par.hpp"
#include "support/strings.hpp"

using namespace pareval;
using support::Json;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --cache FILE       load/save the persistent score cache\n"
      "  --samples N        samples per cell (default: 25)\n"
      "  --seed S           base RNG seed (default: 1070)\n"
      "  --out FILE         timing JSON (default: BENCH_figures.json)\n"
      "  --print-cache-key  print the scoring-pipeline hash and exit\n",
      argv0);
  return 2;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string cache_path;
  std::string out_path = "BENCH_figures.json";
  eval::HarnessConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-cache-key") {
      std::printf("%s\n",
                  support::u64_to_hex(eval::scoring_pipeline_hash())
                      .c_str());
      return 0;
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--samples" && i + 1 < argc) {
      config.samples_per_task = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (config.samples_per_task < 1) return usage(argv[0]);

  auto& cache = eval::ScoreCache::global();
  bool preloaded = false;
  std::size_t loaded_entries = 0;
  if (!cache_path.empty()) {
    preloaded = cache.load(cache_path);
    loaded_entries = preloaded ? cache.size() : 0;
    std::printf("score cache: %s (%zu entries)\n",
                preloaded ? "warm-started" : "cold start",
                loaded_entries);
  }

  // One sweep, all pairs overlapped; every figure below reads from it.
  const auto t_sweep = std::chrono::steady_clock::now();
  auto& pool = support::ThreadPool::global();
  std::vector<std::future<std::vector<eval::TaskResult>>> futures;
  for (const auto& pair : llm::all_pairs()) {
    futures.push_back(pool.submit([pair, config] {
      std::printf("sweeping %s...\n", llm::pair_name(pair).c_str());
      return eval::run_pair_sweep(pair, config);
    }));
  }
  std::vector<eval::TaskResult> all;
  std::vector<std::vector<eval::TaskResult>> per_pair;
  for (auto& f : futures) {
    per_pair.push_back(pool.await(f));
    for (const auto& t : per_pair.back()) all.push_back(t);
  }
  const double sweep_ms = ms_since(t_sweep);
  std::printf("\nsweep: %.1f ms, score cache %zu hits / %zu misses\n\n",
              sweep_ms, cache.hits(), cache.misses());

  const auto t_reports = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < llm::all_pairs().size(); ++i) {
    std::printf("%s\n",
                eval::figure2_report(llm::all_pairs()[i], per_pair[i])
                    .c_str());
  }
  const auto classification = eval::classify_failures(all);
  std::printf("%s\n", eval::figure3_report(classification).c_str());
  std::printf("%s\n", eval::figure4_report(all).c_str());
  std::printf("%s\n", eval::figure5_report(all).c_str());
  std::printf("%s\n", eval::table1_report().c_str());
  std::printf("%s\n", eval::table2_report(all).c_str());
  const double reports_ms = ms_since(t_reports);

  if (!cache_path.empty()) {
    if (cache.save(cache_path)) {
      std::printf("saved score cache to %s (%zu entries)\n",
                  cache_path.c_str(), cache.size());
    } else {
      std::fprintf(stderr, "bench_figures: could not save cache to %s\n",
                   cache_path.c_str());
    }
  }

  Json root = Json::object();
  Json context = Json::object();
  context.set("samples_per_task", config.samples_per_task);
  context.set("threads",
              static_cast<long long>(support::hardware_threads()));
  context.set("cache_file", cache_path);
  context.set("cache_preloaded", preloaded);
  context.set("cache_entries_loaded",
              static_cast<long long>(loaded_entries));
  context.set("cache_hits", static_cast<long long>(cache.hits()));
  context.set("cache_misses", static_cast<long long>(cache.misses()));
  root.set("context", std::move(context));
  Json benchmarks = Json::array();
  auto bench_entry = [](const char* name, double ms) {
    Json b = Json::object();
    b.set("name", name);
    b.set("real_time", ms);
    b.set("time_unit", "ms");
    return b;
  };
  benchmarks.push_back(bench_entry("figures_sweep", sweep_ms));
  benchmarks.push_back(bench_entry("figures_reports", reports_ms));
  benchmarks.push_back(bench_entry("figures_total", sweep_ms + reports_ms));
  root.set("benchmarks", std::move(benchmarks));

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_figures: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << root.dump() << '\n';
  std::printf("wrote %s (sweep %.1f ms, %zu hits / %zu misses%s)\n",
              out_path.c_str(), sweep_ms, cache.hits(), cache.misses(),
              preloaded ? ", warm start" : "");
  return out.good() ? 0 : 1;
}
