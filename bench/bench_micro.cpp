// Micro benchmarks (google-benchmark) for the substrates: interpreter
// throughput, translation engine, build simulator, DBSCAN, word2vec and
// the pass@k estimator — plus a serial-vs-parallel sweep timing section
// that emits machine-readable JSON (BENCH_sweep.json) so the orchestrator's
// speedup is tracked across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "buildsim/builder.hpp"
#include "cluster/dbscan.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "execsim/driver.hpp"
#include "execsim/registry.hpp"
#include "minic/bytecode.hpp"
#include "minic/objcodec.hpp"
#include "minic/runio.hpp"
#include "support/par.hpp"
#include "support/rng.hpp"
#include "text/word2vec.hpp"
#include "translate/transpile.hpp"

using namespace pareval;

static void BM_InterpreterNanoXor(benchmark::State& state) {
  const auto* app = apps::find_app("nanoXOR");
  const auto build = buildsim::build_repo(app->repos.at(apps::Model::Cuda));
  for (auto _ : state) {
    auto run = execsim::run_executable(*build.exe, {"16", "1"});
    benchmark::DoNotOptimize(run.stdout_text);
  }
}
BENCHMARK(BM_InterpreterNanoXor);

static void BM_VmNanoXor(benchmark::State& state) {
  const auto* app = apps::find_app("nanoXOR");
  const auto build = buildsim::build_repo(app->repos.at(apps::Model::Cuda));
  for (auto _ : state) {
    auto run = execsim::run_executable(*build.exe, {"16", "1"},
                                       minic::RunLimits{},
                                       minic::EngineKind::Vm);
    benchmark::DoNotOptimize(run.stdout_text);
  }
}
BENCHMARK(BM_VmNanoXor);

static void BM_BuildSimXsbench(benchmark::State& state) {
  const auto* app = apps::find_app("XSBench");
  const auto& repo = app->repos.at(apps::Model::Cuda);
  for (auto _ : state) {
    auto result = buildsim::build_repo(repo);
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_BuildSimXsbench);

// ---- warm-object codec throughput ----------------------------------------
// The persistence half of the warm-object store: serialize/deserialize
// post-sema TUs and compiled bytecode chunks, benched against the work a
// warm decode elides (parsing the source, compiling chunks from the AST).
// A decode that is not clearly cheaper than the front-end work it skips
// would make the object layer pure overhead.

static const buildsim::BuildResult& xsbench_build() {
  static const buildsim::BuildResult build = buildsim::build_repo(
      apps::find_app("XSBench")->repos.at(apps::Model::Cuda));
  return build;
}

static void BM_TuSerialize(benchmark::State& state) {
  const auto& tu = *xsbench_build().exe->program.tus.front();
  std::int64_t bytes = 0;
  for (auto _ : state) {
    const std::string payload = minic::encode_tu(tu);
    bytes = static_cast<std::int64_t>(payload.size());
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_TuSerialize);

static void BM_TuDeserialize(benchmark::State& state) {
  const std::string payload =
      minic::encode_tu(*xsbench_build().exe->program.tus.front());
  for (auto _ : state) {
    auto tu = minic::decode_tu(payload);
    benchmark::DoNotOptimize(tu.get());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_TuDeserialize);

static void BM_TuParseCompile(benchmark::State& state) {
  // The work BM_TuDeserialize replaces: front-end parse + sema of the
  // same source the serialized TU came from.
  const auto* app = apps::find_app("XSBench");
  const auto& repo = app->repos.at(apps::Model::Cuda);
  std::string source;
  for (const auto& path : repo.paths()) {
    const std::string ext = vfs::extension(path);
    if (ext == ".cu" || ext == ".c" || ext == ".cpp") {
      source = path;
      break;
    }
  }
  const minic::Capabilities caps = xsbench_build().caps;
  for (auto _ : state) {
    auto tu = execsim::compile_tu(repo, source, caps);
    benchmark::DoNotOptimize(tu.get());
  }
}
BENCHMARK(BM_TuParseCompile);

static void BM_ChunkCompile(benchmark::State& state) {
  // Baseline for the chunk codec: compile every function's bytecode from
  // the linked AST (what a VM run pays on a cold ChunkPack).
  const auto& exe = *xsbench_build().exe;
  const minic::BuiltinTable builtins =
      execsim::make_builtin_table(exe.program.caps);
  for (auto _ : state) {
    minic::ChunkPack pack;
    for (const auto& [name, fn] : exe.program.functions) {
      benchmark::DoNotOptimize(
          &pack.get_or_compile(*fn, exe.program, builtins));
    }
    benchmark::DoNotOptimize(pack.size());
  }
}
BENCHMARK(BM_ChunkCompile);

static void BM_ChunkSerialize(benchmark::State& state) {
  const auto& exe = *xsbench_build().exe;
  const minic::BuiltinTable builtins =
      execsim::make_builtin_table(exe.program.caps);
  const minic::NodeTable nodes = minic::NodeTable::build(exe.program.tus);
  minic::ChunkPack pack;
  for (const auto& [name, fn] : exe.program.functions) {
    pack.get_or_compile(*fn, exe.program, builtins);
  }
  std::int64_t bytes = 0;
  for (auto _ : state) {
    minic::BinWriter w;
    for (const auto& [name, fn] : exe.program.functions) {
      minic::encode_chunk(*pack.get(fn), nodes, w);
    }
    bytes = static_cast<std::int64_t>(w.bytes().size());
    benchmark::DoNotOptimize(w.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_ChunkSerialize);

static void BM_ChunkDeserialize(benchmark::State& state) {
  const auto& exe = *xsbench_build().exe;
  const minic::BuiltinTable builtins =
      execsim::make_builtin_table(exe.program.caps);
  const minic::NodeTable nodes = minic::NodeTable::build(exe.program.tus);
  minic::ChunkPack pack;
  std::size_t count = 0;
  minic::BinWriter w;
  for (const auto& [name, fn] : exe.program.functions) {
    minic::encode_chunk(pack.get_or_compile(*fn, exe.program, builtins),
                        nodes, w);
    ++count;
  }
  const std::string payload = w.bytes();
  for (auto _ : state) {
    minic::BinReader r(payload);
    for (std::size_t i = 0; i < count; ++i) {
      minic::Chunk chunk;
      minic::decode_chunk(r, nodes, builtins, &chunk);
      benchmark::DoNotOptimize(chunk.code.size());
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_ChunkDeserialize);

static void BM_TranspileCudaToOmp(benchmark::State& state) {
  const auto* app = apps::find_app("SimpleMOC-kernel");
  for (auto _ : state) {
    xlate::TranspileLog log;
    auto repo = xlate::transpile_repo(*app, apps::Model::Cuda,
                                      apps::Model::OmpOffload, log);
    benchmark::DoNotOptimize(repo.file_count());
  }
}
BENCHMARK(BM_TranspileCudaToOmp);

static void BM_Dbscan(benchmark::State& state) {
  support::Rng rng(7);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<double> p(8);
    const double center = static_cast<double>(i % 4);
    for (auto& x : p) x = center + rng.uniform(-0.1, 0.1);
    points.push_back(std::move(p));
  }
  for (auto _ : state) {
    auto labels = cluster::dbscan(points, {0.5, 3});
    benchmark::DoNotOptimize(labels);
  }
}
BENCHMARK(BM_Dbscan)->Arg(64)->Arg(256);

static void BM_Word2Vec(benchmark::State& state) {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 40; ++i) {
    docs.push_back({"error", "undeclared", "identifier",
                    i % 2 ? "kernel" : "makefile", "line",
                    std::to_string(i % 5)});
  }
  for (auto _ : state) {
    text::Word2Vec w2v;
    text::Word2VecConfig cfg;
    cfg.epochs = 3;
    w2v.train(docs, cfg);
    benchmark::DoNotOptimize(w2v.vocabulary_size());
  }
}
BENCHMARK(BM_Word2Vec);

static void BM_PassAtK(benchmark::State& state) {
  for (auto _ : state) {
    double total = 0;
    for (int c = 0; c <= 200; ++c) total += eval::pass_at_k(200, c, 10);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PassAtK);

static void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  auto& pool = support::ThreadPool::global();
  for (auto _ : state) {
    std::vector<std::future<int>> futs;
    futs.reserve(256);
    for (int i = 0; i < 256; ++i) {
      futs.push_back(pool.submit([i] { return i * i; }));
    }
    long long sum = 0;
    for (auto& f : futs) sum += pool.await(f);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ThreadPoolSubmitDrain);

// ---- sweep orchestrator timing -------------------------------------------
// Times the same reduced pair sweep three ways and writes the result as
// google-benchmark-shaped JSON. `threads=1` is the pre-orchestrator serial
// baseline; the parallel runs use the work-stealing pool; the cached run
// repeats the parallel one against a warm ScoreCache.

namespace {

double time_sweep_ms(const eval::HarnessConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto tasks = eval::run_pair_sweep(llm::all_pairs()[0], config);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(tasks.size());
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int run_sweep_timing_section() {
  eval::HarnessConfig serial;
  serial.samples_per_task = 10;
  serial.threads = 1;
  serial.use_score_cache = false;
  eval::HarnessConfig parallel = serial;
  parallel.threads = 0;  // global pool, hardware_threads() workers
  eval::HarnessConfig cached = parallel;
  cached.use_score_cache = true;

  const unsigned threads = support::hardware_threads();
  std::printf("\n-- sweep orchestrator: serial vs parallel "
              "(N=%d, %u hardware threads) --\n",
              serial.samples_per_task, threads);
  const double serial_ms = time_sweep_ms(serial);
  const double parallel_ms = time_sweep_ms(parallel);
  eval::ScoreCache::global().clear();
  const double warmup_ms = time_sweep_ms(cached);   // fills the cache
  const double cached_ms = time_sweep_ms(cached);   // hits it
  const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
  std::printf("serial   %10.1f ms\nparallel %10.1f ms  (speedup %.2fx)\n"
              "cached   %10.1f ms  (%zu hits / %zu misses)\n",
              serial_ms, parallel_ms, speedup, cached_ms,
              eval::ScoreCache::global().hits(),
              eval::ScoreCache::global().misses());

  // Verify the acceptance invariant while we have both runs' configs.
  const bool identical = eval::run_pair_sweep(llm::all_pairs()[0], serial) ==
                         eval::run_pair_sweep(llm::all_pairs()[0], parallel);
  std::printf("determinism (1 thread vs pool): %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  FILE* json = std::fopen("BENCH_sweep.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"context\": {\"threads\": %u, \"samples_per_task\": %d,\n"
        "              \"deterministic\": %s, \"warmup_ms\": %.3f},\n"
        "  \"benchmarks\": [\n"
        "    {\"name\": \"sweep_serial\", \"real_time\": %.3f, "
        "\"time_unit\": \"ms\"},\n"
        "    {\"name\": \"sweep_parallel\", \"real_time\": %.3f, "
        "\"time_unit\": \"ms\", \"speedup\": %.3f},\n"
        "    {\"name\": \"sweep_parallel_cached\", \"real_time\": %.3f, "
        "\"time_unit\": \"ms\", \"speedup\": %.3f}\n"
        "  ]\n"
        "}\n",
        threads, serial.samples_per_task, identical ? "true" : "false",
        warmup_ms, serial_ms, parallel_ms, speedup, cached_ms,
        cached_ms > 0 ? serial_ms / cached_ms : 0.0);
    std::fclose(json);
    std::printf("wrote BENCH_sweep.json\n");
  }
  return identical ? 0 : 1;
}

// ---- Execute-stage engine timing -----------------------------------------
// Interpreter vs bytecode VM over the hottest shipped (app, model)
// implementations — ranked by interpreter step count, so the comparison is
// dominated by real Execute work, not startup. Emits BENCH_vm.json; the CI
// bench job gates `execute_total.speedup > 1` (the VM must actually beat
// the tree-walking interpreter) and `context.identical` (outputs must stay
// bit-identical while doing so).

double time_execute_ms(const buildsim::BuildResult& build,
                       const apps::AppSpec& app, minic::EngineKind engine) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& tc : app.tests) {
    auto run = execsim::run_executable(*build.exe, tc.args,
                                       minic::RunLimits{}, engine);
    benchmark::DoNotOptimize(run.stdout_text);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int run_vm_timing_section() {
  struct Target {
    const apps::AppSpec* app;
    apps::Model model;
    buildsim::BuildResult build;
    std::uint64_t steps = 0;  // interpreter steps across the app's tests
    std::uint64_t tree_fallbacks = 0;  // VM fallback instrs across the reps
    double interp_ms = 0, vm_ms = 0;
  };
  constexpr std::size_t kHottest = 6;
  constexpr int kReps = 3;

  // Build every shipped implementation once and rank by Execute heat.
  std::vector<Target> targets;
  bool identical = true;
  for (const apps::AppSpec* app : apps::all_apps()) {
    for (const apps::Model m : app->available) {
      Target t{app, m, buildsim::build_repo(app->repos.at(m))};
      if (!t.build.ok) continue;
      for (const auto& tc : app->tests) {
        const auto interp = execsim::run_executable(
            *t.build.exe, tc.args, minic::RunLimits{},
            minic::EngineKind::Interp);
        const auto vm = execsim::run_executable(*t.build.exe, tc.args,
                                                minic::RunLimits{},
                                                minic::EngineKind::Vm);
        t.steps += interp.stats.steps;
        if (minic::to_json(interp).dump() != minic::to_json(vm).dump()) {
          identical = false;
          std::printf("engine MISMATCH: %s / %s\n", app->name.c_str(),
                      apps::model_key(m));
        }
      }
      targets.push_back(std::move(t));
    }
  }
  std::sort(targets.begin(), targets.end(),
            [](const Target& a, const Target& b) { return a.steps > b.steps; });
  if (targets.size() > kHottest) targets.resize(kHottest);

  std::printf("\n-- Execute engines: interpreter vs bytecode VM "
              "(%zu hottest implementations, %d reps) --\n",
              targets.size(), kReps);
  double interp_total = 0, vm_total = 0;
  std::uint64_t fallback_total = 0;
  for (Target& t : targets) {
    const std::uint64_t fb_before =
        execsim::driver_counters().tree_fallbacks;
    for (int r = 0; r < kReps; ++r) {
      t.interp_ms += time_execute_ms(t.build, *t.app, //
                                     minic::EngineKind::Interp);
      t.vm_ms += time_execute_ms(t.build, *t.app, minic::EngineKind::Vm);
    }
    t.tree_fallbacks = execsim::driver_counters().tree_fallbacks - fb_before;
    interp_total += t.interp_ms;
    vm_total += t.vm_ms;
    fallback_total += t.tree_fallbacks;
    std::printf("%-24s %-12s interp %8.1f ms   vm %8.1f ms   (%.2fx, "
                "%llu steps, %llu fallbacks)\n",
                t.app->name.c_str(), apps::model_key(t.model), t.interp_ms,
                t.vm_ms, t.vm_ms > 0 ? t.interp_ms / t.vm_ms : 0.0,
                static_cast<unsigned long long>(t.steps),
                static_cast<unsigned long long>(t.tree_fallbacks));
  }
  const double speedup = vm_total > 0 ? interp_total / vm_total : 0.0;
  std::printf("total                                 interp %8.1f ms   vm "
              "%8.1f ms   (speedup %.2fx)\n"
              "determinism (interp vs vm, full corpus): %s\n",
              interp_total, vm_total, speedup,
              identical ? "IDENTICAL" : "MISMATCH");

  FILE* json = std::fopen("BENCH_vm.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"context\": {\"repetitions\": %d, \"identical\": %s},\n"
                 "  \"benchmarks\": [\n",
                 kReps, identical ? "true" : "false");
    for (const Target& t : targets) {
      std::fprintf(json,
                   "    {\"name\": \"execute_%s_%s\", \"interp_ms\": %.3f, "
                   "\"vm_ms\": %.3f, \"speedup\": %.3f, \"steps\": %llu, "
                   "\"tree_fallbacks\": %llu, \"time_unit\": \"ms\"},\n",
                   t.app->name.c_str(), apps::model_key(t.model),
                   t.interp_ms, t.vm_ms,
                   t.vm_ms > 0 ? t.interp_ms / t.vm_ms : 0.0,
                   static_cast<unsigned long long>(t.steps),
                   static_cast<unsigned long long>(t.tree_fallbacks));
    }
    std::fprintf(json,
                 "    {\"name\": \"execute_total\", \"interp_ms\": %.3f, "
                 "\"vm_ms\": %.3f, \"speedup\": %.3f, "
                 "\"tree_fallbacks\": %llu, \"time_unit\": \"ms\"}\n"
                 "  ]\n"
                 "}\n",
                 interp_total, vm_total, speedup,
                 static_cast<unsigned long long>(fallback_total));
    std::fclose(json);
    std::printf("wrote BENCH_vm.json\n");
  }
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int sweep_rc = run_sweep_timing_section();
  const int vm_rc = run_vm_timing_section();
  return sweep_rc != 0 ? sweep_rc : vm_rc;
}
