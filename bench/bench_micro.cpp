// Micro benchmarks (google-benchmark) for the substrates: interpreter
// throughput, translation engine, build simulator, DBSCAN, word2vec and
// the pass@k estimator — plus a serial-vs-parallel sweep timing section
// that emits machine-readable JSON (BENCH_sweep.json) so the orchestrator's
// speedup is tracked across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "apps/app.hpp"
#include "buildsim/builder.hpp"
#include "cluster/dbscan.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "support/par.hpp"
#include "support/rng.hpp"
#include "text/word2vec.hpp"
#include "translate/transpile.hpp"

using namespace pareval;

static void BM_InterpreterNanoXor(benchmark::State& state) {
  const auto* app = apps::find_app("nanoXOR");
  const auto build = buildsim::build_repo(app->repos.at(apps::Model::Cuda));
  for (auto _ : state) {
    auto run = execsim::run_executable(*build.exe, {"16", "1"});
    benchmark::DoNotOptimize(run.stdout_text);
  }
}
BENCHMARK(BM_InterpreterNanoXor);

static void BM_BuildSimXsbench(benchmark::State& state) {
  const auto* app = apps::find_app("XSBench");
  const auto& repo = app->repos.at(apps::Model::Cuda);
  for (auto _ : state) {
    auto result = buildsim::build_repo(repo);
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_BuildSimXsbench);

static void BM_TranspileCudaToOmp(benchmark::State& state) {
  const auto* app = apps::find_app("SimpleMOC-kernel");
  for (auto _ : state) {
    xlate::TranspileLog log;
    auto repo = xlate::transpile_repo(*app, apps::Model::Cuda,
                                      apps::Model::OmpOffload, log);
    benchmark::DoNotOptimize(repo.file_count());
  }
}
BENCHMARK(BM_TranspileCudaToOmp);

static void BM_Dbscan(benchmark::State& state) {
  support::Rng rng(7);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<double> p(8);
    const double center = static_cast<double>(i % 4);
    for (auto& x : p) x = center + rng.uniform(-0.1, 0.1);
    points.push_back(std::move(p));
  }
  for (auto _ : state) {
    auto labels = cluster::dbscan(points, {0.5, 3});
    benchmark::DoNotOptimize(labels);
  }
}
BENCHMARK(BM_Dbscan)->Arg(64)->Arg(256);

static void BM_Word2Vec(benchmark::State& state) {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 40; ++i) {
    docs.push_back({"error", "undeclared", "identifier",
                    i % 2 ? "kernel" : "makefile", "line",
                    std::to_string(i % 5)});
  }
  for (auto _ : state) {
    text::Word2Vec w2v;
    text::Word2VecConfig cfg;
    cfg.epochs = 3;
    w2v.train(docs, cfg);
    benchmark::DoNotOptimize(w2v.vocabulary_size());
  }
}
BENCHMARK(BM_Word2Vec);

static void BM_PassAtK(benchmark::State& state) {
  for (auto _ : state) {
    double total = 0;
    for (int c = 0; c <= 200; ++c) total += eval::pass_at_k(200, c, 10);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PassAtK);

static void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  auto& pool = support::ThreadPool::global();
  for (auto _ : state) {
    std::vector<std::future<int>> futs;
    futs.reserve(256);
    for (int i = 0; i < 256; ++i) {
      futs.push_back(pool.submit([i] { return i * i; }));
    }
    long long sum = 0;
    for (auto& f : futs) sum += pool.await(f);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ThreadPoolSubmitDrain);

// ---- sweep orchestrator timing -------------------------------------------
// Times the same reduced pair sweep three ways and writes the result as
// google-benchmark-shaped JSON. `threads=1` is the pre-orchestrator serial
// baseline; the parallel runs use the work-stealing pool; the cached run
// repeats the parallel one against a warm ScoreCache.

namespace {

double time_sweep_ms(const eval::HarnessConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto tasks = eval::run_pair_sweep(llm::all_pairs()[0], config);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(tasks.size());
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int run_sweep_timing_section() {
  eval::HarnessConfig serial;
  serial.samples_per_task = 10;
  serial.threads = 1;
  serial.use_score_cache = false;
  eval::HarnessConfig parallel = serial;
  parallel.threads = 0;  // global pool, hardware_threads() workers
  eval::HarnessConfig cached = parallel;
  cached.use_score_cache = true;

  const unsigned threads = support::hardware_threads();
  std::printf("\n-- sweep orchestrator: serial vs parallel "
              "(N=%d, %u hardware threads) --\n",
              serial.samples_per_task, threads);
  const double serial_ms = time_sweep_ms(serial);
  const double parallel_ms = time_sweep_ms(parallel);
  eval::ScoreCache::global().clear();
  const double warmup_ms = time_sweep_ms(cached);   // fills the cache
  const double cached_ms = time_sweep_ms(cached);   // hits it
  const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
  std::printf("serial   %10.1f ms\nparallel %10.1f ms  (speedup %.2fx)\n"
              "cached   %10.1f ms  (%zu hits / %zu misses)\n",
              serial_ms, parallel_ms, speedup, cached_ms,
              eval::ScoreCache::global().hits(),
              eval::ScoreCache::global().misses());

  // Verify the acceptance invariant while we have both runs' configs.
  const bool identical = eval::run_pair_sweep(llm::all_pairs()[0], serial) ==
                         eval::run_pair_sweep(llm::all_pairs()[0], parallel);
  std::printf("determinism (1 thread vs pool): %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  FILE* json = std::fopen("BENCH_sweep.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"context\": {\"threads\": %u, \"samples_per_task\": %d,\n"
        "              \"deterministic\": %s, \"warmup_ms\": %.3f},\n"
        "  \"benchmarks\": [\n"
        "    {\"name\": \"sweep_serial\", \"real_time\": %.3f, "
        "\"time_unit\": \"ms\"},\n"
        "    {\"name\": \"sweep_parallel\", \"real_time\": %.3f, "
        "\"time_unit\": \"ms\", \"speedup\": %.3f},\n"
        "    {\"name\": \"sweep_parallel_cached\", \"real_time\": %.3f, "
        "\"time_unit\": \"ms\", \"speedup\": %.3f}\n"
        "  ]\n"
        "}\n",
        threads, serial.samples_per_task, identical ? "true" : "false",
        warmup_ms, serial_ms, parallel_ms, speedup, cached_ms,
        cached_ms > 0 ? serial_ms / cached_ms : 0.0);
    std::fclose(json);
    std::printf("wrote BENCH_sweep.json\n");
  }
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_sweep_timing_section();
}
