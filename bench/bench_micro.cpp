// Micro benchmarks (google-benchmark) for the substrates: interpreter
// throughput, translation engine, build simulator, DBSCAN, word2vec and
// the pass@k estimator.
#include <benchmark/benchmark.h>

#include "apps/app.hpp"
#include "buildsim/builder.hpp"
#include "cluster/dbscan.hpp"
#include "eval/metrics.hpp"
#include "support/rng.hpp"
#include "text/word2vec.hpp"
#include "translate/transpile.hpp"

using namespace pareval;

static void BM_InterpreterNanoXor(benchmark::State& state) {
  const auto* app = apps::find_app("nanoXOR");
  const auto build = buildsim::build_repo(app->repos.at(apps::Model::Cuda));
  for (auto _ : state) {
    auto run = execsim::run_executable(*build.exe, {"16", "1"});
    benchmark::DoNotOptimize(run.stdout_text);
  }
}
BENCHMARK(BM_InterpreterNanoXor);

static void BM_BuildSimXsbench(benchmark::State& state) {
  const auto* app = apps::find_app("XSBench");
  const auto& repo = app->repos.at(apps::Model::Cuda);
  for (auto _ : state) {
    auto result = buildsim::build_repo(repo);
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_BuildSimXsbench);

static void BM_TranspileCudaToOmp(benchmark::State& state) {
  const auto* app = apps::find_app("SimpleMOC-kernel");
  for (auto _ : state) {
    xlate::TranspileLog log;
    auto repo = xlate::transpile_repo(*app, apps::Model::Cuda,
                                      apps::Model::OmpOffload, log);
    benchmark::DoNotOptimize(repo.file_count());
  }
}
BENCHMARK(BM_TranspileCudaToOmp);

static void BM_Dbscan(benchmark::State& state) {
  support::Rng rng(7);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<double> p(8);
    const double center = static_cast<double>(i % 4);
    for (auto& x : p) x = center + rng.uniform(-0.1, 0.1);
    points.push_back(std::move(p));
  }
  for (auto _ : state) {
    auto labels = cluster::dbscan(points, {0.5, 3});
    benchmark::DoNotOptimize(labels);
  }
}
BENCHMARK(BM_Dbscan)->Arg(64)->Arg(256);

static void BM_Word2Vec(benchmark::State& state) {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 40; ++i) {
    docs.push_back({"error", "undeclared", "identifier",
                    i % 2 ? "kernel" : "makefile", "line",
                    std::to_string(i % 5)});
  }
  for (auto _ : state) {
    text::Word2Vec w2v;
    text::Word2VecConfig cfg;
    cfg.epochs = 3;
    w2v.train(docs, cfg);
    benchmark::DoNotOptimize(w2v.vocabulary_size());
  }
}
BENCHMARK(BM_Word2Vec);

static void BM_PassAtK(benchmark::State& state) {
  for (auto _ : state) {
    double total = 0;
    for (int c = 0; c <= 200; ++c) total += eval::pass_at_k(200, c, 10);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PassAtK);

BENCHMARK_MAIN();
