#pragma once
// Runs the full three-pair sweep once (used by the Fig. 3/4/5 benches).
#include <cstdio>
#include <vector>

#include "eval/harness.hpp"

inline std::vector<pareval::eval::TaskResult> run_all_pairs() {
  std::vector<pareval::eval::TaskResult> all;
  for (const auto& pair : pareval::llm::all_pairs()) {
    std::printf("sweeping %s...\n", pareval::llm::pair_name(pair).c_str());
    auto tasks = pareval::eval::run_pair_sweep(pair);
    for (auto& t : tasks) all.push_back(std::move(t));
  }
  std::printf("\n");
  return all;
}
