#pragma once
// Runs the full three-pair sweep once (used by the Fig. 3/4/5 benches).
// The three pair sweeps are submitted to the global work-stealing pool so
// the tail of one pair overlaps the next; each sweep then fans its cells
// and samples out as nested tasks.
#include <cstdio>
#include <future>
#include <vector>

#include "eval/harness.hpp"
#include "support/par.hpp"

inline std::vector<pareval::eval::TaskResult> run_all_pairs(
    const pareval::eval::HarnessConfig& config = {}) {
  auto& pool = pareval::support::ThreadPool::global();
  std::vector<std::future<std::vector<pareval::eval::TaskResult>>> futures;
  for (const auto& pair : pareval::llm::all_pairs()) {
    futures.push_back(pool.submit([pair, config] {
      // Printed when the sweep starts executing, not when it is queued.
      std::printf("sweeping %s...\n", pareval::llm::pair_name(pair).c_str());
      return pareval::eval::run_pair_sweep(pair, config);
    }));
  }
  std::vector<pareval::eval::TaskResult> all;
  for (auto& f : futures) {
    auto tasks = pool.await(f);
    for (auto& t : tasks) all.push_back(std::move(t));
  }
  std::printf("\n");
  return all;
}
