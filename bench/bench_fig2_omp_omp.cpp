// Figure 2e/2f: build@1 and pass@1 for OpenMP Threads -> OpenMP Offload.
#include "fig2_common.hpp"
int main() { return run_fig2(2); }
