// Figure 2c/2d: build@1 and pass@1 for CUDA -> Kokkos (incl. SWE-agent).
#include "fig2_common.hpp"
int main() { return run_fig2(1); }
