// Figure 2a/2b: build@1 and pass@1 for CUDA -> OpenMP Offload.
#include "fig2_common.hpp"
int main() { return run_fig2(0); }
