// Figure 4: total inference tokens used in translation (thousands),
// averaged across generations and programming-model pairs.
#include <cstdio>

#include "eval/report.hpp"
#include "sweep_common.hpp"

int main() {
  const auto tasks = run_all_pairs();
  std::printf("%s", pareval::eval::figure4_report(tasks).c_str());
  return 0;
}
