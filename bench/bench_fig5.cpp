// Figure 5: expected token cost Eκ (Eq. 2) — the expected number of tokens
// needed to obtain one successful translation; cells with pass@1 > 0.
#include <cstdio>

#include "eval/report.hpp"
#include "sweep_common.hpp"

int main() {
  const auto tasks = run_all_pairs();
  std::printf("%s", pareval::eval::figure5_report(tasks).c_str());
  return 0;
}
