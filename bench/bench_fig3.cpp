// Figure 3: error-category counts per (LLM, application), produced by the
// real pipeline of §6.3 — word2vec embedding of this run's failure logs,
// DBSCAN clustering, and the labelling/merging pass — printed next to the
// paper's reference counts.
#include <cstdio>

#include "eval/classify.hpp"
#include "eval/report.hpp"
#include "sweep_common.hpp"

int main() {
  const auto tasks = run_all_pairs();
  const auto classification = pareval::eval::classify_failures(tasks);
  std::printf("%zu failure logs, %d raw DBSCAN clusters before merging\n\n",
              classification.logs.size(), classification.raw_clusters);
  std::printf("%s", pareval::eval::figure3_report(classification).c_str());
  return 0;
}
