// Ablations for the design choices called out in DESIGN.md §5:
//  A. defect-category weights: Figure 3 calibration vs uniform — effect on
//     classification agreement with the paper's category mix;
//  B. chunk-size threshold of the chunk agent — effect on chunk counts;
//  C. DBSCAN eps — effect on raw cluster counts over the same logs.
#include <cstdio>

#include "codeanal/functions.hpp"
#include "eval/classify.hpp"
#include "eval/harness.hpp"

using namespace pareval;

int main() {
  // --- B: chunk agent threshold ---------------------------------------
  std::printf("== Ablation: chunk-agent split threshold (XSBench CUDA) ==\n");
  const auto* xs = apps::find_app("XSBench");
  const auto& repo = xs->repos.at(apps::Model::Cuda);
  for (const std::size_t budget : {512u, 1024u, 2048u, 8192u}) {
    std::size_t chunks = 0;
    for (const auto& f : repo.files()) {
      chunks += codeanal::split_into_chunks(f.content, budget).size();
    }
    std::printf("  budget %5zu bytes -> %zu chunks\n", budget, chunks);
  }

  // --- A + C need failure logs: one quick sweep of the first pair ------
  eval::HarnessConfig cfg;
  cfg.samples_per_task = 10;
  std::printf("\nrunning a reduced sweep (N=10, CUDA->OpenMP Offload)...\n");
  const auto tasks = eval::run_pair_sweep(llm::all_pairs()[0], cfg);

  std::printf("\n== Ablation: DBSCAN eps vs raw cluster count ==\n");
  for (const double eps : {0.15, 0.35, 0.7, 1.5}) {
    const auto c = eval::classify_failures(tasks, {eps, 2});
    int labelled = 0;
    for (const auto& log : c.logs) labelled += log.labelled;
    std::printf("  eps %.2f -> %3d raw clusters (%d/%zu logs labelled)\n",
                eps, c.raw_clusters, labelled, c.logs.size());
  }

  std::printf("\n== Ablation: classification majority-merge on/off ==\n");
  const auto c = eval::classify_failures(tasks);
  int keyword_only = 0, after_merge = 0;
  for (const auto& log : c.logs) {
    xlate::DefectKind k;
    keyword_only += eval::label_log(log.log, &k);
    after_merge += log.labelled;
  }
  std::printf("  per-log keyword labels: %d; after cluster majority merge: "
              "%d (of %zu logs)\n",
              keyword_only, after_merge, c.logs.size());
  return 0;
}
