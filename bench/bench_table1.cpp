// Regenerates Table 1: the application suite's SLoC, cyclomatic
// complexity, file counts and programming-model matrix, computed from the
// embedded repositories by the same tooling style as the paper (pmccabe).
#include <cstdio>

#include "eval/report.hpp"

int main() {
  std::printf("%s\n", pareval::eval::table1_report().c_str());
  return 0;
}
