#pragma once
// Shared driver for the Figure 2 benches: run the full N=25 sweep of one
// translation pair and print the paper's heat-map layout.
#include <cstdio>

#include "eval/report.hpp"

inline int run_fig2(std::size_t pair_index) {
  const auto& pair = pareval::llm::all_pairs()[pair_index];
  std::printf("Running the ParEval-Repo sweep for %s (N=25 per cell)...\n\n",
              pareval::llm::pair_name(pair).c_str());
  const auto tasks = pareval::eval::run_pair_sweep(pair);
  std::printf("%s", pareval::eval::figure2_report(pair, tasks).c_str());
  int aborted = 0;
  for (const auto& t : tasks) {
    if (!t.ran) ++aborted;
  }
  std::printf("(%d task cells aborted, matching the paper's empty cells: "
              "context-window or node-hour-budget limits)\n", aborted);
  return 0;
}
