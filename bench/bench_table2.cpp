// Table 2: estimated $ / node-hour cost of one successful translation for
// the most token-economic commercial and open-source models.
#include <cstdio>

#include "eval/report.hpp"
#include "sweep_common.hpp"

int main() {
  const auto tasks = run_all_pairs();
  std::printf("%s", pareval::eval::table2_report(tasks).c_str());
  return 0;
}
